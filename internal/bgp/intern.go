package bgp

import "routelab/internal/asn"

// This file implements the AS-path intern pool (DESIGN.md §12). The
// convergence engine re-derives the same handful of AS paths millions of
// times: every advertisement used to build a fresh Prepend copy of the
// best route's path, even when the identical path had been advertised on
// the previous event. The pool canonicalizes paths into immutable shared
// handles so a path is materialized once per computation (or once per
// fork CHAIN — forks share their parent's entries read-only) and every
// later derivation is a map probe.
//
// Lifetime and sharing rules:
//
//   - An ipath is immutable from the moment it enters a pool. Routes
//     hold the handle in an unexported field; public accessors strip it
//     so externally visible Route values stay plain data (reflect-equal
//     across independent computations).
//   - Each Computation owns exactly one pathPool. Fork gives the child a
//     fresh pool whose parent pointer chains to the frozen parent's
//     pool; lookups walk the chain, inserts always go to the owning
//     pool. A frozen parent's pool is never written again, so any number
//     of forks may read it concurrently.
//   - Within one chain, interning is canonical: two value-equal paths
//     resolve to the same *ipath, which is what lets sameRoute compare
//     paths by pointer on the hot path.
//
// The pool's hit/miss counters accumulate in plain fields and flush once
// per Converge in flushObs (the hotatomic rule: no per-intern obs
// calls).

// ipath is one interned, canonical, immutable AS path. The pointer is
// the identity: within a pool chain, value-equal paths share one ipath.
type ipath struct {
	p asn.Path
	// plen caches p.Len() so the decision process never re-walks
	// segments.
	plen int
}

// prependKey addresses the prepend cache: the interned parent path
// extended by one AS. Pointer identity of the parent makes the key
// comparable without rendering the path.
type prependKey struct {
	parent *ipath
	a      asn.ASN
}

// pathPool interns AS paths for one Computation. Not safe for concurrent
// writes; parents of forked pools are frozen (read-only) by contract.
type pathPool struct {
	parent *pathPool
	byKey  map[string]*ipath
	prep   map[prependKey]*ipath

	// hits/misses accumulate here and are flushed (and zeroed) once per
	// Converge by Computation.flushObs.
	hits, misses int
}

func newPathPool(parent *pathPool) *pathPool {
	return &pathPool{
		parent: parent,
		byKey:  make(map[string]*ipath),
		prep:   make(map[prependKey]*ipath),
	}
}

// lookup walks the fork chain for a canonical key.
func (pl *pathPool) lookup(k string) *ipath {
	for p := pl; p != nil; p = p.parent {
		if ip := p.byKey[k]; ip != nil {
			return ip
		}
	}
	return nil
}

// lookupPrep walks the fork chain for a prepend-cache entry.
func (pl *pathPool) lookupPrep(k prependKey) *ipath {
	for p := pl; p != nil; p = p.parent {
		if ip := p.prep[k]; ip != nil {
			return ip
		}
	}
	return nil
}

// intern canonicalizes p into the chain, inserting into the owning pool
// on a miss. The returned handle (and its path) must not be mutated.
func (pl *pathPool) intern(p asn.Path) *ipath {
	k := p.Key()
	if ip := pl.lookup(k); ip != nil {
		pl.hits++
		return ip
	}
	pl.misses++
	ip := &ipath{p: p, plen: p.Len()}
	pl.byKey[k] = ip
	return ip
}

// prepend returns the interned extension of a route's path by one AS —
// the per-advertisement operation of the engine. With a live parent
// handle the fast path is a single map probe; base covers routes built
// outside the pool (parent == nil), which pay a full canonicalization.
func (pl *pathPool) prepend(parent *ipath, base asn.Path, a asn.ASN) *ipath {
	if parent == nil {
		return pl.intern(base.Prepend(a))
	}
	k := prependKey{parent: parent, a: a}
	if ip := pl.lookupPrep(k); ip != nil {
		pl.hits++
		return ip
	}
	pl.misses++
	built := parent.p.Prepend(a)
	bk := built.Key()
	ip := pl.lookup(bk)
	if ip == nil {
		ip = &ipath{p: built, plen: built.Len()}
		pl.byKey[bk] = ip
	}
	pl.prep[k] = ip
	return ip
}
