package bgp

import (
	"maps"
	"slices"

	"routelab/internal/asn"
	"routelab/internal/obs"
)

// Fork/Freeze obs handles. Fork is per-campaign API (never on the
// Converge hot path), so direct counter bumps are fine here.
var obsForkCalls = obs.Default().Counter("bgp.fork.calls")

// Prefix returns the prefix this computation routes.
func (c *Computation) Prefix() asn.Prefix { return c.prefix }

// Freeze marks the computation immutable: Announce and Withdraw panic
// from now on, and the state may be shared read-only — which is what
// Fork relies on. Freezing is idempotent and safe to invoke (and
// observe) from multiple goroutines; it cannot be undone.
//
// Converge stays callable (on a frozen computation the queue is
// normally empty, so it is a no-op flush), but like every Computation
// method it must not run concurrently with other calls on the SAME
// computation. Forks of a frozen computation are independent and may be
// taken and driven from different goroutines concurrently.
func (c *Computation) Freeze() { c.frozen.Store(true) }

// Frozen reports whether Freeze (or Fork) has been called.
func (c *Computation) Frozen() bool { return c.frozen.Load() }

// Fork freezes the computation and returns a copy-on-write child that
// continues from the exact current state — same announcements, same
// adj-RIB-ins, same best routes, same event clock, so a mutated fork is
// indistinguishable from a from-scratch computation that replayed the
// parent's history plus the new events (the differential suite in
// forkdiff_test.go pins exactly that).
//
// The fork is cheap: O(#ASes) pointer copies. Per-AS adj-RIB-in rows
// are shared with the parent and cloned lazily on first write; installed
// *Route values are immutable and shared forever. The child gets its own
// AS-path intern pool chained to the parent's (see intern.go).
//
// Any number of forks may be taken from one frozen parent, concurrently,
// and each fork is single-owner mutable state like any Computation.
// Forks never un-freeze the parent: a campaign keeps the converged base
// around and forks it once per variant.
func (c *Computation) Fork() *Computation {
	c.Freeze()
	n := len(c.e.asns)
	f := &Computation{
		e:         c.e,
		prefix:    c.prefix,
		anns:      maps.Clone(c.anns),
		adjIn:     slices.Clone(c.adjIn),
		sharedRow: make([]bool, n),
		best:      slices.Clone(c.best),
		origin:    maps.Clone(c.origin),
		pool:      newPathPool(c.pool),
		buckets:   make([][]int32, len(c.buckets)),
		nQueued:   c.nQueued,
		queued:    slices.Clone(c.queued),
		force:     slices.Clone(c.force),
		clock:     c.clock,
		converged: c.converged,
		ov:        c.ov.clone(),
	}
	for i, row := range f.adjIn {
		if row != nil {
			f.sharedRow[i] = true
		}
	}
	// Pending events (a fork of a not-yet-converged computation) carry
	// over so the child converges exactly as the parent would have.
	for p, b := range c.buckets {
		if len(b) > 0 {
			f.buckets[p] = slices.Clone(b)
		}
	}
	obsForkCalls.Inc()
	return f
}
