package bgp

import (
	"routelab/internal/asn"
	"routelab/internal/geo"
	"routelab/internal/topology"
)

// Local-preference bands. Relationship classes are separated by 100 so a
// single policy bonus can deliberately jump a route across one class
// boundary — which is precisely how ground-truth Gao–Rexford violations
// are born.
const (
	lpCustomer = 300
	lpPeer     = 200
	lpProvider = 100

	// lpDomesticBonus lifts a domestic route one class above its station
	// (a domestic provider route beats an international peer route).
	lpDomesticBonus = 150
	// lpResearchBonus lifts any route traversing an R&E backbone to the
	// top for ASes with ResearchPreference (universities prefer the
	// research path no matter what it costs).
	lpResearchBonus = 400
	// lpContentTEBonus lifts PEER routes toward content destinations
	// one class for ASes running content traffic engineering.
	lpContentTEBonus = 150
	// lpSiblingBonus keeps traffic on-net: routes learned from a
	// sibling are preferred one class above their organizational
	// station (mergers route internally first — the §4.2 behavior the
	// Sibs refinement explains).
	lpSiblingBonus = 120
)

// baseLocalPref maps a route's organizational class to its band.
// RelNone (an origin route relayed by a sibling) prices like a customer
// route.
func baseLocalPref(orgRel topology.Rel) int {
	switch orgRel {
	case topology.RelCustomer, topology.RelSibling, topology.RelNone:
		return lpCustomer
	case topology.RelPeer:
		return lpPeer
	default:
		return lpProvider
	}
}

// effectiveRel resolves the relationship of neighbor `other` from `self`
// for a specific prefix, applying hybrid (per-city) and partial-transit
// overrides. city is the interconnection city the prefix's traffic uses
// on this link.
func effectiveRel(l *topology.Link, self, other asn.ASN, prefix asn.Prefix, city geo.CityID) topology.Rel {
	rel := l.RoleOf(self, other)
	if hr, ok := l.HybridRoles[city]; ok {
		// HybridRoles stores Hi's role from Lo's perspective at the city.
		if self == l.Lo {
			rel = hr
		} else {
			rel = hr.Invert()
		}
	}
	if l.PartialTransitFor != nil && l.PartialTransitFor[prefix] {
		// Hi provides Lo transit for this prefix.
		if self == l.Lo {
			rel = topology.RelProvider
		} else {
			rel = topology.RelCustomer
		}
	}
	return rel
}

// linkCity deterministically picks the interconnection city a prefix's
// traffic uses on a link. Candidates on the destination origin's home
// continent are preferred (operators interconnect near where the
// traffic is going — the geographic flavor of hot-potato routing);
// within the candidate set, a per-(link, prefix) hash spreads prefixes
// across interconnection points, which is what lets hybrid
// relationships bite for some destinations and not others.
func (e *Engine) linkCity(l *topology.Link, prefix asn.Prefix) geo.CityID {
	if len(l.Cities) == 1 {
		return l.Cities[0]
	}
	cands := l.Cities
	cont := geo.ContinentNone
	if city := e.topo.CityOfPrefix(prefix); city != 0 {
		// Regional serving prefix: interconnect near the servers.
		cont = e.topo.World.ContinentOf(city)
	} else if origin := e.topo.OriginOf(prefix); !origin.IsZero() {
		if oc := e.topo.CountryOf(origin); oc != "" {
			cont = e.topo.World.Country(oc).Continent
		}
	}
	if cont != geo.ContinentNone {
		var near []geo.CityID
		for _, c := range l.Cities {
			if e.topo.World.ContinentOf(c) == cont {
				near = append(near, c)
			}
		}
		if len(near) > 0 {
			cands = near
		}
	}
	h := e.hash(uint64(l.Lo), uint64(l.Hi), uint64(prefix.Addr), uint64(prefix.Len))
	return cands[h%uint64(len(cands))]
}

// localPref computes the local preference `self` assigns to a route of
// organizational class orgRel.
func (e *Engine) localPref(self *topology.AS, orgRel topology.Rel, path asn.Path, prefix asn.Prefix) int {
	lp := baseLocalPref(orgRel)
	if self.DomesticBias && e.isDomesticRoute(self, path) {
		lp += lpDomesticBonus
	}
	if self.ResearchPreference && e.traversesResearch(path) {
		lp += lpResearchBonus
	}
	if self.ContentPeerTE && orgRel == topology.RelPeer && e.isContentPrefix(prefix) {
		lp += lpContentTEBonus
	}
	return lp
}

// siblingLocalPref prices a sibling-learned route: its organizational
// band plus the on-net bonus.
func (e *Engine) siblingLocalPref(self *topology.AS, orgRel topology.Rel, path asn.Path, prefix asn.Prefix) int {
	return e.localPref(self, orgRel, path, prefix) + lpSiblingBonus
}

// isContentPrefix reports whether the prefix serves content traffic —
// a content network's own space or a hosted cache prefix (operators
// know their heavy destinations).
func (e *Engine) isContentPrefix(prefix asn.Prefix) bool {
	return e.topo.IsContentPrefix(prefix)
}

// isDomesticRoute reports whether the entire AS path (including origin)
// consists of ASes homed in self's country — the §6 "domestic path"
// condition, evaluated on ground truth.
func (e *Engine) isDomesticRoute(self *topology.AS, path asn.Path) bool {
	seq := path.Sequence()
	if len(seq) == 0 {
		return false
	}
	for _, a := range seq {
		if e.topo.CountryOf(a) != self.HomeCountry {
			return false
		}
	}
	return true
}

// traversesResearch reports whether the path crosses an R&E backbone.
func (e *Engine) traversesResearch(path asn.Path) bool {
	for _, a := range path.Sequence() {
		if x := e.topo.AS(a); x != nil && x.Class == topology.Research {
			return true
		}
	}
	return false
}

// exports reports whether a route of organizational class orgRel
// (RelNone when originated) may be exported to a neighbor whose
// effective relationship is toRel. The Gao–Rexford export rule: own and
// customer routes go to everyone; peer and provider routes go only to
// customers. Siblings always receive everything (the organization
// shares its full table internally), but what THEY may re-export is
// still governed by the route's organizational class.
func exports(orgRel, toRel topology.Rel) bool {
	if toRel == topology.RelSibling {
		return true
	}
	switch orgRel {
	case topology.RelNone, topology.RelCustomer, topology.RelSibling:
		return true
	default:
		return toRel == topology.RelCustomer
	}
}

// igpCost is the deterministic pseudo-random intradomain cost from the
// AS's "default ingress" to the egress toward a neighbor. It is the
// ground truth behind the "intradomain tie-breaker" row of Table 2.
func (e *Engine) igpCost(self, nextHop asn.ASN, egress geo.CityID) int {
	return int(e.hash(uint64(self), uint64(nextHop), uint64(egress)) % 1000)
}

// hash is a seeded 64-bit mix (splitmix64 over the running state) used
// for all deterministic-but-arbitrary choices.
func (e *Engine) hash(vals ...uint64) uint64 {
	x := uint64(e.seed) ^ 0x9e3779b97f4a7c15
	for _, v := range vals {
		x ^= v + 0x9e3779b97f4a7c15 + (x << 6) + (x >> 2)
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		x = z ^ (z >> 31)
	}
	return x
}
