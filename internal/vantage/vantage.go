// Package vantage emulates the public BGP route-monitor infrastructure
// (RouteViews / RIPE RIS): a handful of collectors peering with a
// core-biased sample of ASes, each exporting its best route per prefix.
//
// The deliberate visibility bias is central to the paper: monitors
// expose many paths from core and research networks but few from the
// edge, miss backup links entirely, and therefore feed relationship
// inference an incomplete picture.
package vantage

import (
	"math/rand"
	"sort"

	"routelab/internal/asn"
	"routelab/internal/bgp"
	"routelab/internal/topology"
)

// Entry is one RIB entry observed at a collector: the feeding peer's
// best AS path for a prefix. Path starts with the peer itself and ends
// at the origin.
type Entry struct {
	Peer   asn.ASN
	Prefix asn.Prefix
	Path   []asn.ASN
}

// Snapshot is one collection epoch (the paper aggregates five monthly
// snapshots, Oct'14–Feb'15).
type Snapshot struct {
	Epoch   int
	Entries []Entry
}

// SelectPeers picks n feed-providing member ASes with the historical
// RouteViews skew: every Tier-1 and research backbone that exists, then
// large ISPs, then a sprinkle of content networks. Edge networks do not
// feed collectors.
func SelectPeers(topo *topology.Topology, rng *rand.Rand, n int) []asn.ASN {
	var peers []asn.ASN
	add := func(pool []asn.ASN, k int) {
		idx := rng.Perm(len(pool))
		for _, i := range idx {
			if k == 0 || len(peers) >= n {
				return
			}
			peers = append(peers, pool[i])
			k--
		}
	}
	peers = append(peers, topo.ASesOfClass(topology.Tier1)...)
	peers = append(peers, topo.ASesOfClass(topology.Research)...)
	if len(peers) > n {
		peers = peers[:n]
	}
	add(topo.ASesOfClass(topology.LargeISP), n-len(peers))
	add(topo.ASesOfClass(topology.Content), (n-len(peers)+1)/2)
	add(topo.ASesOfClass(topology.SmallISP), n-len(peers))
	sort.Slice(peers, func(i, j int) bool { return peers[i] < peers[j] })
	return peers
}

// Collect assembles the snapshot a collector would dump from the given
// RIB: each peer's best path for every covered prefix.
func Collect(rib *bgp.RIB, peers []asn.ASN, epoch int) *Snapshot {
	s := &Snapshot{Epoch: epoch}
	for _, p := range rib.Prefixes() {
		for _, peer := range peers {
			rt, ok := rib.Route(peer, p)
			if !ok {
				continue
			}
			s.Entries = append(s.Entries, Entry{
				Peer:   peer,
				Prefix: p,
				Path:   rt.ASPathFrom(peer),
			})
		}
	}
	return s
}

// Paths returns every distinct AS path in the snapshot (as slices; the
// caller must not modify them).
func (s *Snapshot) Paths() [][]asn.ASN {
	out := make([][]asn.ASN, 0, len(s.Entries))
	for i := range s.Entries {
		out = append(out, s.Entries[i].Path)
	}
	return out
}

// OriginNeighbors returns, per prefix, the set of neighbors the origin
// was observed announcing the prefix to — the evidence base for the
// prefix-specific-policy criteria of §4.3. An edge N→O is "observed for
// prefix P" when some feed path toward P ends ... N O.
func (s *Snapshot) OriginNeighbors() map[asn.Prefix]map[asn.ASN]bool {
	out := make(map[asn.Prefix]map[asn.ASN]bool)
	for i := range s.Entries {
		e := &s.Entries[i]
		if len(e.Path) < 2 {
			continue
		}
		n := e.Path[len(e.Path)-2]
		m := out[e.Prefix]
		if m == nil {
			m = make(map[asn.ASN]bool)
			out[e.Prefix] = m
		}
		m[n] = true
	}
	return out
}

// ObservedLinks returns every adjacent AS pair appearing on any feed
// path, canonically ordered.
func (s *Snapshot) ObservedLinks() map[topology.LinkKey]bool {
	out := make(map[topology.LinkKey]bool)
	for i := range s.Entries {
		p := s.Entries[i].Path
		for j := 0; j+1 < len(p); j++ {
			if p[j] != p[j+1] {
				out[topology.MakeLinkKey(p[j], p[j+1])] = true
			}
		}
	}
	return out
}
