package vantage

import (
	"math/rand"
	"testing"

	"routelab/internal/asn"
	"routelab/internal/bgp"
	"routelab/internal/topology"
)

func smallRIB(t *testing.T) (*topology.Topology, *bgp.RIB, []asn.ASN) {
	t.Helper()
	topo := topology.Generate(13, topology.TestConfig())
	e := bgp.New(topo, 13)
	// Keep it quick: only the content majors' prefixes.
	var prefixes []asn.Prefix
	for i := 0; i < 3; i++ {
		a := topo.Names["content-"+string(rune('0'+i))]
		prefixes = append(prefixes, topo.AS(a).Prefixes...)
	}
	rib := e.ComputeRIB(prefixes, 0)
	peers := SelectPeers(topo, rand.New(rand.NewSource(13)), 20)
	return topo, rib, peers
}

func TestCollectShapes(t *testing.T) {
	topo, rib, peers := smallRIB(t)
	s := Collect(rib, peers, 3)
	if s.Epoch != 3 {
		t.Errorf("epoch = %d", s.Epoch)
	}
	if len(s.Entries) == 0 {
		t.Fatal("no entries collected")
	}
	for i := range s.Entries {
		e := &s.Entries[i]
		if e.Path[0] != e.Peer {
			t.Fatalf("path must start at the peer: %v", e)
		}
		origin := e.Path[len(e.Path)-1]
		if got := topo.OriginOf(e.Prefix); got != origin {
			t.Fatalf("path origin %v != prefix origin %v", origin, got)
		}
	}
}

func TestOriginNeighbors(t *testing.T) {
	_, rib, peers := smallRIB(t)
	s := Collect(rib, peers, 0)
	on := s.OriginNeighbors()
	if len(on) == 0 {
		t.Fatal("no origin-neighbor evidence")
	}
	for p, nbrs := range on {
		if len(nbrs) == 0 {
			t.Errorf("prefix %s has empty neighbor evidence", p)
		}
	}
}

func TestObservedLinksAreRealAdjacencies(t *testing.T) {
	topo, rib, peers := smallRIB(t)
	s := Collect(rib, peers, 0)
	links := s.ObservedLinks()
	if len(links) == 0 {
		t.Fatal("no links observed")
	}
	for k := range links {
		if topo.Link(k.Lo, k.Hi) == nil {
			t.Fatalf("observed link %v-%v is not a ground-truth adjacency", k.Lo, k.Hi)
		}
	}
}

func TestPathsSharesBacking(t *testing.T) {
	_, rib, peers := smallRIB(t)
	s := Collect(rib, peers, 0)
	if got := len(s.Paths()); got != len(s.Entries) {
		t.Errorf("Paths() returned %d, want %d", got, len(s.Entries))
	}
}
