// The experiments registry: every table and figure is an Experiment
// with a stable name, run as a pure computation returning a structured
// Result. Rendering to the paper-style text report is a separate step
// (Render), so cmd/routelab can print the classic byte-identical output
// while cmd/routelabd serves the very same Result values as JSON.
package experiments

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"

	"routelab/internal/obs"
	"routelab/internal/scenario"
)

// Env is the execution environment an experiment consumes: the shared
// (sealed, warm) scenario and the master seed the run derives its
// per-experiment rand streams from. Envs are read-only and safe to
// share across concurrent Run calls — the scenario is immutable after
// Build and classify.Context's model caches are synchronized.
type Env struct {
	S    *scenario.Scenario
	Seed int64
}

// Result is a structured experiment outcome. Every concrete Result is
// an exported, JSON-marshalable struct in this package; its canonical
// text rendering (the bytes cmd/routelab prints) is produced by Render.
type Result interface {
	// render writes the experiment's canonical text report.
	render(w io.Writer)
}

// Experiment is one registered driver: a named, context-aware
// computation over a scenario.
type Experiment interface {
	// Name is the stable identifier the CLI and the service dispatch on.
	Name() string
	// Run executes the experiment. It honors ctx cancellation at stage
	// boundaries and returns a structured Result on success.
	Run(ctx context.Context, env *Env) (Result, error)
}

type experiment struct {
	name string
	run  func(ctx context.Context, env *Env) (Result, error)
}

func (e *experiment) Name() string { return e.name }

// Run times the experiment under its obs stage ("experiment/<name>")
// and bumps the experiments.runs counter, exactly as the print-style
// entry points did before the registry redesign.
func (e *experiment) Run(ctx context.Context, env *Env) (Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	defer obs.StartStage("experiment/" + e.name)()
	obs.Inc("experiments.runs")
	return e.run(ctx, env)
}

var registry = map[string]Experiment{}

func register(name string, run func(ctx context.Context, env *Env) (Result, error)) {
	registry[name] = &experiment{name: name, run: run}
}

func init() {
	register("table1", runTable1)
	register("figure1", runFigure1)
	register("table2", runTable2)
	register("figure2", runFigure2)
	register("figure3", runFigure3)
	register("table3", runTable3)
	register("table4", runTable4)
	register("pspvalidation", runPSPValidation)
	register("alternates", runAlternates)
	register("casestudies", runCaseStudies)
	register("accuracy", runAccuracy)
	register("prediction", runPrediction)
	register("ablations", runAblations)
	// whatif is API-era (no pre-registry print driver) and deliberately
	// NOT part of allOrder: "all" stays the paper reproduction.
	register("whatif", runWhatIf)
	register("all", runAll)
}

// Get looks up a registered experiment by name.
func Get(name string) (Experiment, bool) {
	e, ok := registry[name]
	return e, ok
}

// Names lists the experiment identifiers the CLI and service accept,
// sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Render produces the canonical text report for a Result — the same
// bytes the pre-registry print-style drivers wrote.
func Render(r Result) string {
	var b strings.Builder
	r.render(&b)
	return b.String()
}

// Run dispatches one experiment by name and writes its text rendering —
// the classic CLI entry point, preserved byte-for-byte over the
// registry.
func Run(name string, w io.Writer, s *scenario.Scenario, seed int64) error {
	return RunContext(context.Background(), name, w, s, seed)
}

// RunContext is Run with a caller-supplied context; cancellation is
// honored at experiment stage boundaries.
func RunContext(ctx context.Context, name string, w io.Writer, s *scenario.Scenario, seed int64) error {
	exp, ok := Get(name)
	if !ok {
		return fmt.Errorf("experiments: unknown experiment %q (have %v)", name, Names())
	}
	res, err := exp.Run(ctx, &Env{S: s, Seed: seed})
	if err != nil {
		return err
	}
	_, err = io.WriteString(w, Render(res))
	return err
}

// NamedResult pairs a sub-experiment with its result inside AllResult.
type NamedResult struct {
	Name   string `json:"name"`
	Result Result `json:"result"`
}

// AllResult is the composite outcome of the "all" experiment: every
// sub-experiment's result in paper order.
type AllResult struct {
	Parts []NamedResult `json:"parts"`
}

func (r *AllResult) render(w io.Writer) {
	for _, p := range r.Parts {
		p.Result.render(w)
	}
}

// allOrder is the paper order the "all" experiment runs and renders in
// (distinct from the sorted Names listing).
var allOrder = []string{
	"table1", "figure1", "table2", "figure2", "figure3", "table3",
	"table4", "pspvalidation", "alternates", "casestudies", "accuracy",
	"prediction", "ablations",
}

func runAll(ctx context.Context, env *Env) (Result, error) {
	res := &AllResult{Parts: make([]NamedResult, 0, len(allOrder))}
	for _, name := range allOrder {
		part, err := registry[name].Run(ctx, env)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", name, err)
		}
		res.Parts = append(res.Parts, NamedResult{Name: name, Result: part})
	}
	return res, nil
}

// All runs every experiment in paper order and writes the combined text
// report (the classic CLI behavior for "all").
func All(w io.Writer, s *scenario.Scenario, seed int64) {
	res, err := runAll(context.Background(), &Env{S: s, Seed: seed})
	if err != nil {
		// Only context cancellation can fail runAll, and Background
		// never cancels; keep the legacy void signature.
		panic(err)
	}
	io.WriteString(w, Render(res))
}
