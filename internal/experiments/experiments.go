// Package experiments contains one driver per table and figure of the
// paper's evaluation. Each driver consumes a shared scenario.Scenario
// and computes a structured Result carrying the same rows/series the
// paper reports; Render turns a Result into the fixed-width text report
// (EXPERIMENTS.md records the side-by-side comparison with the
// published numbers), and cmd/routelabd serves the same Results as
// JSON. See registry.go for the dispatch API.
package experiments

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"sort"

	"routelab/internal/asn"
	"routelab/internal/atlas"
	"routelab/internal/classify"
	"routelab/internal/geo"
	"routelab/internal/parallel"
	"routelab/internal/report"
	"routelab/internal/scenario"
	"routelab/internal/stats"
	"routelab/internal/topology"
)

// --- Table 1 ----------------------------------------------------------

// Table1Row is one AS class's probe-distribution row.
type Table1Row struct {
	Class     string `json:"class"`
	Probes    int    `json:"probes"`
	ASes      int    `json:"ases"`
	Countries int    `json:"countries"`
}

// Table1Result reports the distribution of selected probes by AS class
// (paper §3.1, Table 1), using the degree-based categorization.
type Table1Result struct {
	Rows        []Table1Row `json:"rows"`
	TotalProbes int         `json:"total_probes"`
	TotalASes   int         `json:"total_ases"`
}

func computeTable1(s *scenario.Scenario) *Table1Result {
	type agg struct {
		probes    int
		ases      map[asn.ASN]bool
		countries map[geo.CountryCode]bool
	}
	perClass := map[topology.Class]*agg{}
	for _, p := range s.Probes {
		cls := atlas.ClassifyByDegree(s.Topo, p.AS)
		a := perClass[cls]
		if a == nil {
			a = &agg{ases: map[asn.ASN]bool{}, countries: map[geo.CountryCode]bool{}}
			perClass[cls] = a
		}
		a.probes++
		a.ases[p.AS] = true
		a.countries[s.Topo.World.CountryOf(p.City)] = true
	}
	res := &Table1Result{}
	totalASes := map[asn.ASN]bool{}
	for _, cls := range []topology.Class{topology.Stub, topology.SmallISP, topology.LargeISP, topology.Tier1} {
		a := perClass[cls]
		if a == nil {
			a = &agg{ases: map[asn.ASN]bool{}, countries: map[geo.CountryCode]bool{}}
		}
		res.Rows = append(res.Rows, Table1Row{
			Class:     cls.String(),
			Probes:    a.probes,
			ASes:      len(a.ases),
			Countries: len(a.countries),
		})
		res.TotalProbes += a.probes
		for x := range a.ases {
			totalASes[x] = true
		}
	}
	res.TotalASes = len(totalASes)
	return res
}

func (r *Table1Result) render(w io.Writer) {
	t := report.NewTable("Table 1: distribution of selected probes",
		"AS type", "Probes", "Distinct ASes", "Distinct Countries")
	for _, row := range r.Rows {
		t.Row(row.Class, row.Probes, row.ASes, row.Countries)
	}
	t.Note("%d probes total in %d ASes (paper: 1,998 probes, 633 ASes)",
		r.TotalProbes, r.TotalASes)
	t.Render(w)
}

func runTable1(ctx context.Context, env *Env) (Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return computeTable1(env.S), nil
}

// Table1 renders Table 1 directly — the classic print-style entry
// point, kept for the bench harness and examples.
func Table1(w io.Writer, s *scenario.Scenario) { computeTable1(s).render(w) }

// --- Figure 1 ---------------------------------------------------------

// Figure1Row is one refinement column's category shares (legend order:
// Best/Short, NonBest/Short, Best/Long, NonBest/Long), in percent.
type Figure1Row struct {
	Refinement string    `json:"refinement"`
	Shares     []float64 `json:"shares"`
}

// Figure1Result reports the decision breakdown across the refinement
// columns (paper §4, Figure 1).
type Figure1Result struct {
	Decisions       int          `json:"decisions"`
	Traces          int          `json:"traces"`
	DestinationASes int          `json:"destination_ases"`
	Rows            []Figure1Row `json:"rows"`
}

// computeFigure1 classifies the seven columns concurrently (each
// refinement is an independent pass over the decision set, sharing only
// classify.Context's synchronized model caches); rows follow the fixed
// Refinements order, so the figure bytes do not depend on the worker
// count.
func computeFigure1(s *scenario.Scenario) *Figure1Result {
	ds := s.Decisions()
	res := &Figure1Result{
		Decisions:       len(ds),
		Traces:          len(s.Measurements),
		DestinationASes: s.DestinationASes(),
	}
	breakdowns := parallel.MapStage("experiments/figure1-breakdowns", classify.Refinements, s.Cfg.RoutingWorkers,
		func(_ int, ref classify.Refinement) map[classify.Category]int {
			return s.Context.Breakdown(ds, ref)
		})
	for ri, ref := range classify.Refinements {
		bd := breakdowns[ri]
		total := 0
		for _, n := range bd {
			total += n
		}
		shares := make([]float64, 0, 4)
		for _, cat := range classify.Categories {
			shares = append(shares, stats.Pct(bd[cat], total))
		}
		res.Rows = append(res.Rows, Figure1Row{Refinement: ref.String(), Shares: shares})
	}
	return res
}

func (r *Figure1Result) render(w io.Writer) {
	bars := report.NewStackedBars(
		fmt.Sprintf("Figure 1: routing-decision breakdown (%d decisions from %d traceroutes, %d destination ASes)",
			r.Decisions, r.Traces, r.DestinationASes),
		"Best/Short", "NonBest/Short", "Best/Long", "NonBest/Long")
	t := report.NewTable("Figure 1 (numeric)", "Refinement",
		"Best/Short%", "NonBest/Short%", "Best/Long%", "NonBest/Long%")
	for _, row := range r.Rows {
		bars.Column(row.Refinement, row.Shares...)
		t.Row(row.Refinement, row.Shares[0], row.Shares[1], row.Shares[2], row.Shares[3])
	}
	t.Note("paper: Simple Best/Short 64.7%%, NonBest/Long 8.3%%; All-1 85.7%%, All-2 75.7%%")
	bars.Render(w)
	t.Render(w)
}

func runFigure1(ctx context.Context, env *Env) (Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return computeFigure1(env.S), nil
}

// Figure1 renders Figure 1 directly (classic entry point).
func Figure1(w io.Writer, s *scenario.Scenario) { computeFigure1(s).render(w) }

// --- Table 2 ----------------------------------------------------------

// Table2Row is one BGP-decision-step row of Table 2.
type Table2Row struct {
	Cause  string `json:"cause"`
	Feeds  int    `json:"feeds"`
	Traces int    `json:"traces"`
}

// Table2Result reports the magnet experiment's decision-step breakdown
// (paper §3.2/§4.4, Table 2) for the feed and traceroute channels.
type Table2Result struct {
	Rows       []Table2Row `json:"rows"`
	FeedTotal  int         `json:"feed_total"`
	TraceTotal int         `json:"trace_total"`
}

func computeTable2(s *scenario.Scenario, rng *rand.Rand) *Table2Result {
	mc := s.RunMagnetCampaign(rng)
	feed := s.Context.MagnetBreakdown(mc.FeedDecisions)
	trace := s.Context.MagnetBreakdown(mc.TraceDecisions)
	res := &Table2Result{}
	for _, n := range feed {
		res.FeedTotal += n
	}
	for _, n := range trace {
		res.TraceTotal += n
	}
	for _, c := range classify.MagnetCauses {
		res.Rows = append(res.Rows, Table2Row{Cause: c.String(), Feeds: feed[c], Traces: trace[c]})
	}
	return res
}

func (r *Table2Result) render(w io.Writer) {
	t := report.NewTable("Table 2: BGP decisions after anycasting the magnet prefix",
		"BGP decision", "Feeds", "Feeds%", "Traceroutes", "Traceroutes%")
	for _, row := range r.Rows {
		t.Row(row.Cause, row.Feeds, stats.Pct(row.Feeds, r.FeedTotal),
			row.Traces, stats.Pct(row.Traces, r.TraceTotal))
	}
	t.Row("Total", r.FeedTotal, 100.0, r.TraceTotal, 100.0)
	t.Note("paper (feeds): best 46.0%%, shorter 16.0%%, intradomain 16.4%%, oldest 2.5%%, violation 18.9%%")
	t.Note("paper (traceroutes): best 42.4%%, shorter 29.4%%, intradomain 15.6%%, oldest 1.6%%, violation 10.8%%")
	t.Render(w)
}

func runTable2(ctx context.Context, env *Env) (Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return computeTable2(env.S, rand.New(rand.NewSource(env.Seed))), nil
}

// Table2 renders Table 2 from a caller-owned rand stream (classic entry
// point).
func Table2(w io.Writer, s *scenario.Scenario, rng *rand.Rand) { computeTable2(s, rng).render(w) }

// --- Figure 2 ---------------------------------------------------------

// Figure2TopRow is one top-violator row of Figure 2's table.
type Figure2TopRow struct {
	Rank  int    `json:"rank"`
	AS    string `json:"as"`
	Class string `json:"class"`
	Count int    `json:"count"`
}

// Figure2Side is one direction (source or destination ASes) of the
// violation-skew analysis.
type Figure2Side struct {
	ByDestination bool            `json:"by_destination"`
	CDF           []float64       `json:"cdf"`
	Top           []Figure2TopRow `json:"top"`
	Total         int             `json:"total"`
	Gini          float64         `json:"gini"`
}

// Figure2Result reports the violation skew across source and
// destination ASes (paper §5, Figure 2).
type Figure2Result struct {
	Sides []Figure2Side `json:"sides"`
}

func computeFigure2(s *scenario.Scenario) *Figure2Result {
	res := &Figure2Result{}
	for _, byDst := range []bool{false, true} {
		sk := s.Context.ViolationSkew(s.Measurements, classify.Simple, byDst)
		counts := make([]int, len(sk))
		for i, p := range sk {
			counts[i] = p.Count
		}
		side := Figure2Side{
			ByDestination: byDst,
			CDF:           stats.Downsample(stats.CDF(counts), 12),
			Gini:          stats.Gini(counts),
		}
		for _, c := range counts {
			side.Total += c
		}
		for i := 0; i < len(sk) && i < 5; i++ {
			cls := "?"
			if x := s.Topo.AS(sk[i].AS); x != nil {
				cls = x.Class.String()
				// An AS can carry several topology names; Names is a map,
				// so sort the matches to keep the label deterministic.
				var names []string
				for name, a := range s.Topo.Names {
					if a == sk[i].AS {
						names = append(names, name)
					}
				}
				sort.Strings(names)
				for _, name := range names {
					cls += " (" + name + ")"
				}
			}
			side.Top = append(side.Top, Figure2TopRow{
				Rank: i + 1, AS: sk[i].AS.String(), Class: cls, Count: sk[i].Count,
			})
		}
		res.Sides = append(res.Sides, side)
	}
	return res
}

func (r *Figure2Result) render(w io.Writer) {
	for _, side := range r.Sides {
		kind := "source"
		if side.ByDestination {
			kind = "destination"
		}
		report.Series(w, fmt.Sprintf("Figure 2 CDF of violations across %s ASes (ranked)", kind),
			side.CDF)
		t := report.NewTable(fmt.Sprintf("Figure 2: top %s ASes by violation share", kind),
			"Rank", "AS", "Class", "Violations", "Share%")
		for _, row := range side.Top {
			t.Row(row.Rank, row.AS, row.Class, row.Count, stats.Pct(row.Count, side.Total))
		}
		t.Note("gini=%.2f", side.Gini)
		if side.ByDestination {
			t.Note("paper: Akamai 21%%, Netflix 17%% of destination-side violations")
		} else {
			t.Note("paper: Cogent 4.1%%, Time Warner 2.2%% of source-side violations")
		}
		t.Render(w)
	}
}

func runFigure2(ctx context.Context, env *Env) (Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return computeFigure2(env.S), nil
}

// Figure2 renders Figure 2 directly (classic entry point).
func Figure2(w io.Writer, s *scenario.Scenario) { computeFigure2(s).render(w) }

// --- Figure 3 ---------------------------------------------------------

// Figure3Column is one stacked bar of the geography breakdown.
type Figure3Column struct {
	Label  string    `json:"label"`
	Shares []float64 `json:"shares"`
}

// Figure3Result reports the per-continent decision breakdown (paper §6,
// Figure 3).
type Figure3Result struct {
	Columns []Figure3Column `json:"columns"`
	// ContinentalPct is the share of decisions on single-continent
	// traceroutes.
	ContinentalPct float64 `json:"continental_pct"`
}

func computeFigure3(s *scenario.Scenario) *Figure3Result {
	gb := s.Context.GeoClassify(s.Measurements, classify.Simple)
	res := &Figure3Result{}
	emit := func(label string, counts map[classify.Category]int) {
		total := 0
		for _, n := range counts {
			total += n
		}
		if total == 0 {
			return
		}
		shares := make([]float64, 0, 4)
		for _, cat := range classify.Categories {
			shares = append(shares, stats.Pct(counts[cat], total))
		}
		res.Columns = append(res.Columns, Figure3Column{
			Label:  fmt.Sprintf("%s (n=%d)", label, total),
			Shares: shares,
		})
	}
	for _, cont := range []geo.Continent{geo.AF, geo.NA, geo.EU, geo.SA, geo.AS} {
		emit(cont.String(), gb.PerContinent[cont])
	}
	emit("Cont", gb.Continental)
	emit("NonCont", gb.Intercontinental)
	contTotal, interTotal := 0, 0
	for _, n := range gb.Continental {
		contTotal += n
	}
	for _, n := range gb.Intercontinental {
		interTotal += n
	}
	res.ContinentalPct = stats.Pct(contTotal, contTotal+interTotal)
	return res
}

func (r *Figure3Result) render(w io.Writer) {
	bars := report.NewStackedBars("Figure 3: decisions by traceroute geography",
		"Best/Short", "NonBest/Short", "Best/Long", "NonBest/Long")
	for _, c := range r.Columns {
		bars.Column(c.Label, c.Shares...)
	}
	bars.Render(w)
	fmt.Fprintf(w, "continental decisions: %.1f%% of dataset (paper: ~45%%)\n\n",
		r.ContinentalPct)
}

func runFigure3(ctx context.Context, env *Env) (Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return computeFigure3(env.S), nil
}

// Figure3 renders Figure 3 directly (classic entry point).
func Figure3(w io.Writer, s *scenario.Scenario) { computeFigure3(s).render(w) }

// --- Table 3 ----------------------------------------------------------

// Table3Row is one continent's domestic-preference attribution row.
type Table3Row struct {
	Continent    string `json:"continent"`
	NonBestShort int    `json:"nonbest_short"`
	Explained    int    `json:"explained"`
}

// Table3Result reports the share of NonBest/Short decisions explained
// by domestic-path preference (paper §6, Table 3).
type Table3Result struct {
	Rows              []Table3Row `json:"rows"`
	TotalNonBestShort int         `json:"total_nonbest_short"`
	TotalExplained    int         `json:"total_explained"`
}

func computeTable3(s *scenario.Scenario) *Table3Result {
	rows := s.Context.DomesticAnalysis(s.Measurements, classify.Simple)
	res := &Table3Result{}
	for _, r := range rows {
		res.Rows = append(res.Rows, Table3Row{
			Continent:    r.Continent.Name(),
			NonBestShort: r.NonBestShort,
			Explained:    r.Explained,
		})
		res.TotalNonBestShort += r.NonBestShort
		res.TotalExplained += r.Explained
	}
	return res
}

func (r *Table3Result) render(w io.Writer) {
	t := report.NewTable("Table 3: NonBest/Short decisions explained by intra-country preference",
		"Continent", "NonBest/Short", "Explained", "Explained%")
	for _, row := range r.Rows {
		t.Row(row.Continent, row.NonBestShort, row.Explained, stats.Pct(row.Explained, row.NonBestShort))
	}
	t.Row("All", r.TotalNonBestShort, r.TotalExplained, stats.Pct(r.TotalExplained, r.TotalNonBestShort))
	t.Note("paper: >40%% of such decisions explained overall")
	t.Render(w)
}

func runTable3(ctx context.Context, env *Env) (Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return computeTable3(env.S), nil
}

// Table3 renders Table 3 directly (classic entry point).
func Table3(w io.Writer, s *scenario.Scenario) { computeTable3(s).render(w) }

// --- Table 4 ----------------------------------------------------------

// Table4Row is one violation category's undersea-cable attribution row.
type Table4Row struct {
	Category  string `json:"category"`
	Total     int    `json:"total"`
	WithCable int    `json:"with_cable"`
}

// Table4Result reports the undersea-cable attribution (paper §6,
// Table 4).
type Table4Result struct {
	Rows []Table4Row `json:"rows"`
	// PathsWithCable / TotalPaths give the "<2% of paths" figure;
	// CableDeviations / CableDecisions the "51.2% deviate" figure.
	PathsWithCable  int `json:"paths_with_cable"`
	TotalPaths      int `json:"total_paths"`
	CableDeviations int `json:"cable_deviations"`
	CableDecisions  int `json:"cable_decisions"`
}

func computeTable4(s *scenario.Scenario) *Table4Result {
	st := s.Context.CableAnalysis(s.Measurements, classify.Simple)
	res := &Table4Result{
		PathsWithCable:  st.PathsWithCable,
		TotalPaths:      st.TotalPaths,
		CableDeviations: st.CableDeviations,
		CableDecisions:  st.CableDecisions,
	}
	for _, r := range st.Rows {
		if !r.Category.IsViolation() {
			continue
		}
		res.Rows = append(res.Rows, Table4Row{
			Category: r.Category.String(), Total: r.Total, WithCable: r.WithCable,
		})
	}
	return res
}

func (r *Table4Result) render(w io.Writer) {
	t := report.NewTable("Table 4: decisions attributable to undersea-cable ASes",
		"Violation type", "Decisions", "With cable", "Explained%")
	for _, row := range r.Rows {
		t.Row(row.Category, row.Total, row.WithCable, stats.Pct(row.WithCable, row.Total))
	}
	t.Note("cable ASes on %.1f%% of paths (paper: <2%%)", stats.Pct(r.PathsWithCable, r.TotalPaths))
	t.Note("%.1f%% of cable-involved decisions deviate (paper: 51.2%%)",
		stats.Pct(r.CableDeviations, r.CableDecisions))
	t.Note("paper: NonBest&Short 3.0%%, Best&Long 6.5%%, NonBest&Long 4.5%%")
	t.Render(w)
}

func runTable4(ctx context.Context, env *Env) (Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return computeTable4(env.S), nil
}

// Table4 renders Table 4 directly (classic entry point).
func Table4(w io.Writer, s *scenario.Scenario) { computeTable4(s).render(w) }

// --- §4.3 validation --------------------------------------------------

// PSPResult reports the §4.3 validation of prefix-specific-policy
// inferences against operator looking glasses.
type PSPResult struct {
	Cases           int `json:"cases"`
	NeighborsWithLG int `json:"neighbors_with_lg"`
	Checked         int `json:"checked"`
	Confirmed       int `json:"confirmed"`
}

func computePSPValidation(s *scenario.Scenario) *PSPResult {
	cases := s.Context.CollectPSPCases(s.Measurements)
	v := s.Context.ValidatePSP(cases, s.LookingGlasses)
	return &PSPResult{
		Cases:           v.Cases,
		NeighborsWithLG: v.NeighborsWithLG,
		Checked:         v.Checked,
		Confirmed:       v.Confirmed,
	}
}

func (r *PSPResult) render(w io.Writer) {
	t := report.NewTable("Section 4.3 validation: prefix-specific policies vs looking glasses",
		"Metric", "Value")
	t.Row("PSP cases (Criteria 1)", r.Cases)
	t.Row("Masked-edge neighbors with a looking glass", r.NeighborsWithLG)
	t.Row("Cases checked", r.Checked)
	t.Row("Cases confirmed", r.Confirmed)
	t.Row("Confirmed %", stats.Pct(r.Confirmed, r.Checked))
	t.Note("paper: 63 cases, 149 neighbors, LGs in 28, Criteria 1 correct 78%% of checked cases")
	t.Render(w)
}

func runPSPValidation(ctx context.Context, env *Env) (Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return computePSPValidation(env.S), nil
}

// PSPValidation renders the §4.3 validation directly (classic entry
// point).
func PSPValidation(w io.Writer, s *scenario.Scenario) { computePSPValidation(s).render(w) }

// --- §4.4 alternates --------------------------------------------------

// AlternatesRow is one preference-order verdict's tally.
type AlternatesRow struct {
	Verdict string `json:"verdict"`
	Targets int    `json:"targets"`
}

// AlternatesResult reports the §4.4 alternate-route discovery campaign.
type AlternatesResult struct {
	Rows          []AlternatesRow `json:"rows"`
	Targets       int             `json:"targets"`
	Announcements int             `json:"announcements"`
	LinksObserved int             `json:"links_observed"`
	LinksMissing  int             `json:"links_missing"`
	// LinksOnlyPoisoned is the subset of missing links visible only
	// after poisoning forced an alternate (the "22.2%" of §3.2).
	LinksOnlyPoisoned int `json:"links_only_poisoned"`
}

func computeAlternates(s *scenario.Scenario, rng *rand.Rand) *AlternatesResult {
	runs := s.RunAlternatesCampaign(rng)
	sum := s.Context.SummarizeAlternates(runs)
	res := &AlternatesResult{
		Targets:           sum.Targets,
		Announcements:     sum.Announcements,
		LinksObserved:     sum.LinksObserved,
		LinksMissing:      sum.LinksMissing,
		LinksOnlyPoisoned: sum.LinksOnlyPoisoned,
	}
	for _, v := range []classify.AlternateVerdict{classify.AltBestShort, classify.AltBestOnly, classify.AltShortOnly, classify.AltNeither} {
		res.Rows = append(res.Rows, AlternatesRow{Verdict: v.String(), Targets: sum.Verdicts[v]})
	}
	return res
}

func (r *AlternatesResult) render(w io.Writer) {
	t := report.NewTable("Section 4.4: alternate-route preference orders",
		"Verdict", "Targets", "Share%")
	for _, row := range r.Rows {
		t.Row(row.Verdict, row.Targets, stats.Pct(row.Targets, r.Targets))
	}
	t.Row("Total", r.Targets, 100.0)
	t.Note("%d distinct announcements (paper: 188 for 360 targets)", r.Announcements)
	t.Note("%d inter-AS links observed; %d absent from inferred topology; %d (%.1f%%) visible only via poisoning",
		r.LinksObserved, r.LinksMissing, r.LinksOnlyPoisoned,
		stats.Pct(r.LinksOnlyPoisoned, r.LinksMissing))
	t.Note("paper: 86.1%% both, 8.0%% best only, 5.0%% shortest only, 0.8%% neither; 739 links, 45 missing, 22.2%% poison-only")
	t.Render(w)
}

func runAlternates(ctx context.Context, env *Env) (Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return computeAlternates(env.S, rand.New(rand.NewSource(env.Seed+1))), nil
}

// Alternates renders the §4.4 campaign from a caller-owned rand stream
// (classic entry point).
func Alternates(w io.Writer, s *scenario.Scenario, rng *rand.Rand) {
	computeAlternates(s, rng).render(w)
}
