// Package experiments contains one driver per table and figure of the
// paper's evaluation. Each driver consumes a shared scenario.Scenario
// and renders the same rows/series the paper reports, so a full run can
// be compared side by side with the published numbers (EXPERIMENTS.md
// records that comparison).
package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"sort"

	"routelab/internal/asn"
	"routelab/internal/atlas"
	"routelab/internal/classify"
	"routelab/internal/geo"
	"routelab/internal/obs"
	"routelab/internal/parallel"
	"routelab/internal/report"
	"routelab/internal/scenario"
	"routelab/internal/stats"
	"routelab/internal/topology"
)

// Table1 reports the distribution of selected probes by AS class
// (paper §3.1, Table 1), using the degree-based categorization.
func Table1(w io.Writer, s *scenario.Scenario) {
	type agg struct {
		probes    int
		ases      map[asn.ASN]bool
		countries map[geo.CountryCode]bool
	}
	perClass := map[topology.Class]*agg{}
	for _, p := range s.Probes {
		cls := atlas.ClassifyByDegree(s.Topo, p.AS)
		a := perClass[cls]
		if a == nil {
			a = &agg{ases: map[asn.ASN]bool{}, countries: map[geo.CountryCode]bool{}}
			perClass[cls] = a
		}
		a.probes++
		a.ases[p.AS] = true
		a.countries[s.Topo.World.CountryOf(p.City)] = true
	}
	t := report.NewTable("Table 1: distribution of selected probes",
		"AS type", "Probes", "Distinct ASes", "Distinct Countries")
	totalASes := map[asn.ASN]bool{}
	totalProbes := 0
	for _, cls := range []topology.Class{topology.Stub, topology.SmallISP, topology.LargeISP, topology.Tier1} {
		a := perClass[cls]
		if a == nil {
			a = &agg{ases: map[asn.ASN]bool{}, countries: map[geo.CountryCode]bool{}}
		}
		t.Row(cls.String(), a.probes, len(a.ases), len(a.countries))
		totalProbes += a.probes
		for x := range a.ases {
			totalASes[x] = true
		}
	}
	t.Note("%d probes total in %d ASes (paper: 1,998 probes, 633 ASes)",
		totalProbes, len(totalASes))
	t.Render(w)
}

// Figure1 reports the decision breakdown across the refinement columns
// (paper §4, Figure 1). The seven columns are classified concurrently
// (each refinement is an independent pass over the decision set, sharing
// only classify.Context's synchronized model caches) and rendered in the
// fixed Refinements order, so the figure bytes do not depend on the
// worker count.
func Figure1(w io.Writer, s *scenario.Scenario) {
	ds := s.Decisions()
	bars := report.NewStackedBars(
		fmt.Sprintf("Figure 1: routing-decision breakdown (%d decisions from %d traceroutes, %d destination ASes)",
			len(ds), len(s.Measurements), s.DestinationASes()),
		"Best/Short", "NonBest/Short", "Best/Long", "NonBest/Long")
	t := report.NewTable("Figure 1 (numeric)", "Refinement",
		"Best/Short%", "NonBest/Short%", "Best/Long%", "NonBest/Long%")
	breakdowns := parallel.MapStage("experiments/figure1-breakdowns", classify.Refinements, s.Cfg.RoutingWorkers,
		func(_ int, ref classify.Refinement) map[classify.Category]int {
			return s.Context.Breakdown(ds, ref)
		})
	for ri, ref := range classify.Refinements {
		bd := breakdowns[ri]
		total := 0
		for _, n := range bd {
			total += n
		}
		shares := make([]float64, 0, 4)
		for _, cat := range classify.Categories {
			shares = append(shares, stats.Pct(bd[cat], total))
		}
		bars.Column(ref.String(), shares...)
		t.Row(ref.String(), shares[0], shares[1], shares[2], shares[3])
	}
	t.Note("paper: Simple Best/Short 64.7%%, NonBest/Long 8.3%%; All-1 85.7%%, All-2 75.7%%")
	bars.Render(w)
	t.Render(w)
}

// Table2 reports the magnet experiment's decision-step breakdown
// (paper §3.2/§4.4, Table 2) for the feed and traceroute channels.
func Table2(w io.Writer, s *scenario.Scenario, rng *rand.Rand) {
	mc := s.RunMagnetCampaign(rng)
	feed := s.Context.MagnetBreakdown(mc.FeedDecisions)
	trace := s.Context.MagnetBreakdown(mc.TraceDecisions)
	feedTotal, traceTotal := 0, 0
	for _, n := range feed {
		feedTotal += n
	}
	for _, n := range trace {
		traceTotal += n
	}
	t := report.NewTable("Table 2: BGP decisions after anycasting the magnet prefix",
		"BGP decision", "Feeds", "Feeds%", "Traceroutes", "Traceroutes%")
	for _, c := range classify.MagnetCauses {
		t.Row(c.String(), feed[c], stats.Pct(feed[c], feedTotal),
			trace[c], stats.Pct(trace[c], traceTotal))
	}
	t.Row("Total", feedTotal, 100.0, traceTotal, 100.0)
	t.Note("paper (feeds): best 46.0%%, shorter 16.0%%, intradomain 16.4%%, oldest 2.5%%, violation 18.9%%")
	t.Note("paper (traceroutes): best 42.4%%, shorter 29.4%%, intradomain 15.6%%, oldest 1.6%%, violation 10.8%%")
	t.Render(w)
}

// Figure2 reports the violation skew across source and destination ASes
// (paper §5, Figure 2).
func Figure2(w io.Writer, s *scenario.Scenario) {
	for _, byDst := range []bool{false, true} {
		kind := "source"
		if byDst {
			kind = "destination"
		}
		sk := s.Context.ViolationSkew(s.Measurements, classify.Simple, byDst)
		counts := make([]int, len(sk))
		for i, p := range sk {
			counts[i] = p.Count
		}
		cdf := stats.CDF(counts)
		report.Series(w, fmt.Sprintf("Figure 2 CDF of violations across %s ASes (ranked)", kind),
			stats.Downsample(cdf, 12))
		t := report.NewTable(fmt.Sprintf("Figure 2: top %s ASes by violation share", kind),
			"Rank", "AS", "Class", "Violations", "Share%")
		total := 0
		for _, c := range counts {
			total += c
		}
		for i := 0; i < len(sk) && i < 5; i++ {
			cls := "?"
			if x := s.Topo.AS(sk[i].AS); x != nil {
				cls = x.Class.String()
				for name, a := range s.Topo.Names {
					if a == sk[i].AS {
						cls += " (" + name + ")"
					}
				}
			}
			t.Row(i+1, sk[i].AS.String(), cls, sk[i].Count, stats.Pct(sk[i].Count, total))
		}
		t.Note("gini=%.2f", stats.Gini(counts))
		if byDst {
			t.Note("paper: Akamai 21%%, Netflix 17%% of destination-side violations")
		} else {
			t.Note("paper: Cogent 4.1%%, Time Warner 2.2%% of source-side violations")
		}
		t.Render(w)
	}
}

// Figure3 reports the per-continent decision breakdown (paper §6,
// Figure 3).
func Figure3(w io.Writer, s *scenario.Scenario) {
	gb := s.Context.GeoClassify(s.Measurements, classify.Simple)
	bars := report.NewStackedBars("Figure 3: decisions by traceroute geography",
		"Best/Short", "NonBest/Short", "Best/Long", "NonBest/Long")
	emit := func(label string, counts map[classify.Category]int) {
		total := 0
		for _, n := range counts {
			total += n
		}
		if total == 0 {
			return
		}
		shares := make([]float64, 0, 4)
		for _, cat := range classify.Categories {
			shares = append(shares, stats.Pct(counts[cat], total))
		}
		bars.Column(fmt.Sprintf("%s (n=%d)", label, total), shares...)
	}
	for _, cont := range []geo.Continent{geo.AF, geo.NA, geo.EU, geo.SA, geo.AS} {
		emit(cont.String(), gb.PerContinent[cont])
	}
	emit("Cont", gb.Continental)
	emit("NonCont", gb.Intercontinental)
	contTotal, interTotal := 0, 0
	for _, n := range gb.Continental {
		contTotal += n
	}
	for _, n := range gb.Intercontinental {
		interTotal += n
	}
	bars.Render(w)
	fmt.Fprintf(w, "continental decisions: %.1f%% of dataset (paper: ~45%%)\n\n",
		stats.Pct(contTotal, contTotal+interTotal))
}

// Table3 reports the share of NonBest/Short decisions explained by
// domestic-path preference (paper §6, Table 3).
func Table3(w io.Writer, s *scenario.Scenario) {
	rows := s.Context.DomesticAnalysis(s.Measurements, classify.Simple)
	t := report.NewTable("Table 3: NonBest/Short decisions explained by intra-country preference",
		"Continent", "NonBest/Short", "Explained", "Explained%")
	totalNBS, totalExp := 0, 0
	for _, r := range rows {
		t.Row(r.Continent.Name(), r.NonBestShort, r.Explained, stats.Pct(r.Explained, r.NonBestShort))
		totalNBS += r.NonBestShort
		totalExp += r.Explained
	}
	t.Row("All", totalNBS, totalExp, stats.Pct(totalExp, totalNBS))
	t.Note("paper: >40%% of such decisions explained overall")
	t.Render(w)
}

// Table4 reports the undersea-cable attribution (paper §6, Table 4).
func Table4(w io.Writer, s *scenario.Scenario) {
	st := s.Context.CableAnalysis(s.Measurements, classify.Simple)
	t := report.NewTable("Table 4: decisions attributable to undersea-cable ASes",
		"Violation type", "Decisions", "With cable", "Explained%")
	for _, r := range st.Rows {
		if !r.Category.IsViolation() {
			continue
		}
		t.Row(r.Category.String(), r.Total, r.WithCable, stats.Pct(r.WithCable, r.Total))
	}
	t.Note("cable ASes on %.1f%% of paths (paper: <2%%)", stats.Pct(st.PathsWithCable, st.TotalPaths))
	t.Note("%.1f%% of cable-involved decisions deviate (paper: 51.2%%)",
		stats.Pct(st.CableDeviations, st.CableDecisions))
	t.Note("paper: NonBest&Short 3.0%%, Best&Long 6.5%%, NonBest&Long 4.5%%")
	t.Render(w)
}

// PSPValidation reports the §4.3 validation of prefix-specific-policy
// inferences against operator looking glasses.
func PSPValidation(w io.Writer, s *scenario.Scenario) {
	cases := s.Context.CollectPSPCases(s.Measurements)
	v := s.Context.ValidatePSP(cases, s.LookingGlasses)
	t := report.NewTable("Section 4.3 validation: prefix-specific policies vs looking glasses",
		"Metric", "Value")
	t.Row("PSP cases (Criteria 1)", v.Cases)
	t.Row("Masked-edge neighbors with a looking glass", v.NeighborsWithLG)
	t.Row("Cases checked", v.Checked)
	t.Row("Cases confirmed", v.Confirmed)
	t.Row("Confirmed %", stats.Pct(v.Confirmed, v.Checked))
	t.Note("paper: 63 cases, 149 neighbors, LGs in 28, Criteria 1 correct 78%% of checked cases")
	t.Render(w)
}

// Alternates reports the §4.4 alternate-route discovery campaign.
func Alternates(w io.Writer, s *scenario.Scenario, rng *rand.Rand) {
	runs := s.RunAlternatesCampaign(rng)
	sum := s.Context.SummarizeAlternates(runs)
	t := report.NewTable("Section 4.4: alternate-route preference orders",
		"Verdict", "Targets", "Share%")
	for _, v := range []classify.AlternateVerdict{classify.AltBestShort, classify.AltBestOnly, classify.AltShortOnly, classify.AltNeither} {
		t.Row(v.String(), sum.Verdicts[v], stats.Pct(sum.Verdicts[v], sum.Targets))
	}
	t.Row("Total", sum.Targets, 100.0)
	t.Note("%d distinct announcements (paper: 188 for 360 targets)", sum.Announcements)
	t.Note("%d inter-AS links observed; %d absent from inferred topology; %d (%.1f%%) visible only via poisoning",
		sum.LinksObserved, sum.LinksMissing, sum.LinksOnlyPoisoned,
		stats.Pct(sum.LinksOnlyPoisoned, sum.LinksMissing))
	t.Note("paper: 86.1%% both, 8.0%% best only, 5.0%% shortest only, 0.8%% neither; 739 links, 45 missing, 22.2%% poison-only")
	t.Render(w)
}

// timed runs one experiment driver under its obs stage timer
// ("experiment/<name>"), so a -metrics-json report breaks the run's
// wall clock down per table/figure.
func timed(name string, fn func()) {
	defer obs.StartStage("experiment/" + name)()
	obs.Inc("experiments.runs")
	fn()
}

// All runs every experiment in paper order.
func All(w io.Writer, s *scenario.Scenario, seed int64) {
	timed("table1", func() { Table1(w, s) })
	timed("figure1", func() { Figure1(w, s) })
	timed("table2", func() { Table2(w, s, rand.New(rand.NewSource(seed))) })
	timed("figure2", func() { Figure2(w, s) })
	timed("figure3", func() { Figure3(w, s) })
	timed("table3", func() { Table3(w, s) })
	timed("table4", func() { Table4(w, s) })
	timed("pspvalidation", func() { PSPValidation(w, s) })
	timed("alternates", func() { Alternates(w, s, rand.New(rand.NewSource(seed+1))) })
	timed("casestudies", func() { CaseStudies(w, s, rand.New(rand.NewSource(seed+3))) })
	timed("accuracy", func() { InferenceAccuracy(w, s) })
	timed("prediction", func() { Prediction(w, s) })
	timed("ablations", func() { Ablations(w, s, rand.New(rand.NewSource(seed+2))) })
}

// Names lists the experiment identifiers the CLI accepts.
func Names() []string {
	out := []string{"table1", "figure1", "table2", "figure2", "figure3", "table3", "table4", "pspvalidation", "alternates", "ablations", "accuracy", "casestudies", "prediction", "all"}
	sort.Strings(out)
	return out
}

// Run dispatches one experiment by name. Each experiment runs under an
// obs stage timer; "all" times every sub-experiment individually (via
// All) rather than as one lump.
func Run(name string, w io.Writer, s *scenario.Scenario, seed int64) error {
	switch name {
	case "table1":
		timed(name, func() { Table1(w, s) })
	case "figure1":
		timed(name, func() { Figure1(w, s) })
	case "table2":
		timed(name, func() { Table2(w, s, rand.New(rand.NewSource(seed))) })
	case "figure2":
		timed(name, func() { Figure2(w, s) })
	case "figure3":
		timed(name, func() { Figure3(w, s) })
	case "table3":
		timed(name, func() { Table3(w, s) })
	case "table4":
		timed(name, func() { Table4(w, s) })
	case "pspvalidation":
		timed(name, func() { PSPValidation(w, s) })
	case "ablations":
		timed(name, func() { Ablations(w, s, rand.New(rand.NewSource(seed+2))) })
	case "accuracy":
		timed(name, func() { InferenceAccuracy(w, s) })
	case "casestudies":
		timed(name, func() { CaseStudies(w, s, rand.New(rand.NewSource(seed+3))) })
	case "prediction":
		timed(name, func() { Prediction(w, s) })
	case "alternates":
		timed(name, func() { Alternates(w, s, rand.New(rand.NewSource(seed+1))) })
	case "all":
		All(w, s, seed)
	default:
		return fmt.Errorf("experiments: unknown experiment %q (have %v)", name, Names())
	}
	return nil
}
