package experiments

import (
	"context"
	"encoding/json"
	"math/rand"
	"os"
	"strings"
	"testing"

	"routelab/internal/scenario"
)

var cached *scenario.Scenario

func testScenario(t *testing.T) *scenario.Scenario {
	t.Helper()
	if cached == nil {
		s, err := scenario.Build(scenario.TestConfig(), nil)
		if err != nil {
			t.Fatal(err)
		}
		cached = s
	}
	return cached
}

func TestAllExperimentsRender(t *testing.T) {
	s := testScenario(t)
	var b strings.Builder
	All(&b, s, 7)
	out := b.String()
	for _, want := range []string{
		"Table 1", "Figure 1", "Table 2", "Figure 2", "Figure 3",
		"Table 3", "Table 4", "alternate-route",
		"Best/Short", "Best relationship", "undersea-cable",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
	if len(out) < 2000 {
		t.Errorf("suspiciously short output (%d bytes)", len(out))
	}
}

// TestGoldenOutput pins the registry redesign to the pre-registry
// print-style output: every experiment's rendering must be
// byte-identical to the goldens captured from the original drivers
// (testdata/<name>_seed7.golden, test scale, seed 7). Regenerate with
// WRITE_GOLDEN=1 go test ./internal/experiments -run TestGoldenOutput
// — but only after an INTENTIONAL output change.
func TestGoldenOutput(t *testing.T) {
	s := testScenario(t)
	update := os.Getenv("WRITE_GOLDEN") != ""
	check := func(name, got string) {
		t.Helper()
		path := "testdata/" + name + "_seed7.golden"
		if update {
			if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
				t.Fatal(err)
			}
			return
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got != string(want) {
			t.Errorf("%s: output differs from golden %s (len got %d, want %d)",
				name, path, len(got), len(want))
		}
	}
	var b strings.Builder
	All(&b, s, 7)
	check("all", b.String())
	for _, name := range Names() {
		if name == "all" {
			continue
		}
		var nb strings.Builder
		if err := Run(name, &nb, s, 7); err != nil {
			t.Fatalf("Run(%s): %v", name, err)
		}
		check(name, nb.String())
	}
}

func TestRunDispatch(t *testing.T) {
	s := testScenario(t)
	for _, name := range Names() {
		if name == "all" || name == "table2" || name == "alternates" {
			continue // covered above; slow
		}
		var b strings.Builder
		if err := Run(name, &b, s, 7); err != nil {
			t.Errorf("Run(%s): %v", name, err)
		}
		if b.Len() == 0 {
			t.Errorf("Run(%s) produced nothing", name)
		}
	}
	if err := Run("nope", &strings.Builder{}, s, 7); err == nil {
		t.Error("unknown experiment accepted")
	}
}

// TestRegistryAPI exercises the structured side of the redesign: every
// registered experiment returns a JSON-marshalable Result whose Render
// matches the text the classic entry points emit, and Run honors
// context cancellation.
func TestRegistryAPI(t *testing.T) {
	s := testScenario(t)
	env := &Env{S: s, Seed: 7}
	for _, name := range []string{"table1", "figure1", "figure3", "prediction", "accuracy"} {
		exp, ok := Get(name)
		if !ok {
			t.Fatalf("Get(%s) missing", name)
		}
		if exp.Name() != name {
			t.Errorf("Name() = %q, want %q", exp.Name(), name)
		}
		res, err := exp.Run(context.Background(), env)
		if err != nil {
			t.Fatalf("Run(%s): %v", name, err)
		}
		data, err := json.Marshal(res)
		if err != nil {
			t.Fatalf("marshal %s result: %v", name, err)
		}
		if len(data) < 10 {
			t.Errorf("%s: suspiciously small JSON (%s)", name, data)
		}
		if Render(res) == "" {
			t.Errorf("%s: empty rendering", name)
		}
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	exp, _ := Get("table1")
	if _, err := exp.Run(ctx, env); err == nil {
		t.Error("Run with canceled context succeeded, want error")
	}
	if err := RunContext(ctx, "figure1", &strings.Builder{}, s, 7); err == nil {
		t.Error("RunContext with canceled context succeeded, want error")
	}
}

// TestResultDeterminism re-runs a rand-consuming experiment twice with
// the same seed and demands identical JSON — the property the service
// cache and the concurrent-vs-serial contract lean on.
func TestResultDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("reruns the alternates campaign")
	}
	s := testScenario(t)
	env := &Env{S: s, Seed: 7}
	exp, _ := Get("alternates")
	r1, err := exp.Run(context.Background(), env)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := exp.Run(context.Background(), env)
	if err != nil {
		t.Fatal(err)
	}
	j1, _ := json.Marshal(r1)
	j2, _ := json.Marshal(r2)
	if string(j1) != string(j2) {
		t.Error("same-seed alternates results differ")
	}
}

func TestAppendixExperiments(t *testing.T) {
	s := testScenario(t)
	var b strings.Builder
	InferenceAccuracy(&b, s)
	if !strings.Contains(b.String(), "Label accuracy") {
		t.Error("accuracy experiment missing content")
	}
	b.Reset()
	PSPValidation(&b, s)
	if !strings.Contains(b.String(), "looking glasses") {
		t.Error("psp validation missing content")
	}
}

func TestAblationsRender(t *testing.T) {
	if testing.Short() {
		t.Skip("ablations rerun the campaign")
	}
	s := testScenario(t)
	var b strings.Builder
	Ablations(&b, s, rand.New(rand.NewSource(3)))
	out := b.String()
	for _, want := range []string{"probe selection", "visibility threshold", "snapshot aggregation"} {
		if !strings.Contains(out, want) {
			t.Errorf("ablations missing %q", want)
		}
	}
}
