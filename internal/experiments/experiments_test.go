package experiments

import (
	"math/rand"
	"strings"
	"testing"

	"routelab/internal/scenario"
)

var cached *scenario.Scenario

func testScenario(t *testing.T) *scenario.Scenario {
	t.Helper()
	if cached == nil {
		s, err := scenario.Build(scenario.TestConfig(), nil)
		if err != nil {
			t.Fatal(err)
		}
		cached = s
	}
	return cached
}

func TestAllExperimentsRender(t *testing.T) {
	s := testScenario(t)
	var b strings.Builder
	All(&b, s, 7)
	out := b.String()
	for _, want := range []string{
		"Table 1", "Figure 1", "Table 2", "Figure 2", "Figure 3",
		"Table 3", "Table 4", "alternate-route",
		"Best/Short", "Best relationship", "undersea-cable",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
	if len(out) < 2000 {
		t.Errorf("suspiciously short output (%d bytes)", len(out))
	}
}

func TestRunDispatch(t *testing.T) {
	s := testScenario(t)
	for _, name := range Names() {
		if name == "all" || name == "table2" || name == "alternates" {
			continue // covered above; slow
		}
		var b strings.Builder
		if err := Run(name, &b, s, 7); err != nil {
			t.Errorf("Run(%s): %v", name, err)
		}
		if b.Len() == 0 {
			t.Errorf("Run(%s) produced nothing", name)
		}
	}
	if err := Run("nope", &strings.Builder{}, s, 7); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestAppendixExperiments(t *testing.T) {
	s := testScenario(t)
	var b strings.Builder
	InferenceAccuracy(&b, s)
	if !strings.Contains(b.String(), "Label accuracy") {
		t.Error("accuracy experiment missing content")
	}
	b.Reset()
	PSPValidation(&b, s)
	if !strings.Contains(b.String(), "looking glasses") {
		t.Error("psp validation missing content")
	}
}

func TestAblationsRender(t *testing.T) {
	if testing.Short() {
		t.Skip("ablations rerun the campaign")
	}
	s := testScenario(t)
	var b strings.Builder
	Ablations(&b, s, rand.New(rand.NewSource(3)))
	out := b.String()
	for _, want := range []string{"probe selection", "visibility threshold", "snapshot aggregation"} {
		if !strings.Contains(out, want) {
			t.Errorf("ablations missing %q", want)
		}
	}
}
