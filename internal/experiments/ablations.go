package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"routelab/internal/atlas"
	"routelab/internal/classify"
	"routelab/internal/geo"
	"routelab/internal/inference"
	"routelab/internal/parallel"
	"routelab/internal/relgraph"
	"routelab/internal/report"
	"routelab/internal/scenario"
	"routelab/internal/stats"
)

// Ablations quantifies the design choices DESIGN.md calls out: the
// paper's continent-balanced probe selection (vs the raw EU-skewed
// population), the inference visibility threshold, and the five-epoch
// snapshot aggregation (vs the latest snapshot only).
func Ablations(w io.Writer, s *scenario.Scenario, rng *rand.Rand) {
	probeSelectionAblation(w, s, rng)
	thresholdAblation(w, s)
	aggregationAblation(w, s)
}

// probeSelectionAblation reruns the campaign with probes drawn
// uniformly from the EU-skewed population — the bias §3.1's balanced
// methodology exists to avoid.
func probeSelectionAblation(w io.Writer, s *scenario.Scenario, rng *rand.Rand) {
	all := s.Platform.Probes()
	n := len(s.Probes)
	if n > len(all) {
		n = len(all)
	}
	idx := rng.Perm(len(all))[:n]
	raw := make([]atlas.Probe, 0, n)
	for _, i := range idx {
		raw = append(raw, all[i])
	}
	ms, _, err := s.Campaign(raw, s.Cfg.TracesTarget, rng)
	if err != nil {
		fmt.Fprintf(w, "probe ablation skipped: %v\n", err)
		return
	}
	t := report.NewTable("Ablation: probe selection (balanced vs raw population sample)",
		"Selection", "Probes", "EU share%", "Best/Short%", "Continental%")
	emit := func(label string, probes []atlas.Probe, measurements []classify.Measurement) {
		eu := 0
		for _, p := range probes {
			if s.Topo.World.ContinentOf(p.City) == geo.EU {
				eu++
			}
		}
		bd := map[classify.Category]int{}
		contDecisions, allDecisions := 0, 0
		for i := range measurements {
			m := &measurements[i]
			_, confined := m.Continental(s.Topo.World)
			for _, d := range m.Decisions {
				bd[s.Context.Classify(d, classify.Simple)]++
				allDecisions++
				if confined {
					contDecisions++
				}
			}
		}
		t.Row(label, len(probes), stats.Pct(eu, len(probes)),
			stats.Pct(bd[classify.BestShort], allDecisions),
			stats.Pct(contDecisions, allDecisions))
	}
	emit("balanced (paper)", s.Probes, s.Measurements)
	emit("raw sample", raw, ms)
	t.Note("the balanced selection is §3.1's defense against the platform's EU deployment skew")
	t.Render(w)
}

// thresholdAblation sweeps the inference visibility threshold and
// reports the inferred edge count and the downstream Best/Short share.
// Each threshold re-infers and reclassifies the whole dataset
// independently, so the sweep fans out across the worker pool; rows are
// rendered in sweep order either way.
func thresholdAblation(w io.Writer, s *scenario.Scenario) {
	t := report.NewTable("Ablation: inference visibility threshold",
		"Threshold", "Edges", "Best/Short%")
	ds := s.Decisions()
	thresholds := []float64{0.1, 0.2, 0.3, 0.5}
	type sweepRow struct {
		edges int
		pct   float64
	}
	rows := parallel.MapStage("experiments/threshold-ablation", thresholds, s.Cfg.RoutingWorkers,
		func(_ int, th float64) sweepRow {
			cfg := inference.DefaultConfig()
			cfg.VisibilityThreshold = th
			cfg.SameOrg = s.Siblings.SameOrg
			gs := make([]*relgraph.Graph, 0, len(s.Snapshots))
			for _, snap := range s.Snapshots {
				gs = append(gs, inference.InferSnapshot(snap, cfg))
			}
			g := inference.Aggregate(gs)
			cx := s.Context.WithGraph(g)
			bd := cx.Breakdown(ds, classify.Simple)
			total := 0
			for _, n := range bd {
				total += n
			}
			return sweepRow{edges: g.NumEdges(), pct: stats.Pct(bd[classify.BestShort], total)}
		})
	for i, th := range thresholds {
		t.Row(fmt.Sprintf("%.1f", th), rows[i].edges, rows[i].pct)
	}
	t.Note("too low mislabels transit as peering; too high invents transit from thin evidence")
	t.Render(w)
}

// aggregationAblation compares the paper's five-epoch weighted majority
// against using only the latest snapshot (no stale links, but also no
// smoothing of transient inference errors).
func aggregationAblation(w io.Writer, s *scenario.Scenario) {
	cfg := inference.DefaultConfig()
	cfg.SameOrg = s.Siblings.SameOrg
	latest := inference.InferSnapshot(s.Snapshots[len(s.Snapshots)-1], cfg)
	ds := s.Decisions()
	t := report.NewTable("Ablation: snapshot aggregation",
		"Topology", "Edges", "Best/Short%")
	for _, row := range []struct {
		label string
		g     *relgraph.Graph
	}{
		{"5-epoch aggregate (paper)", s.Context.Graph},
		{"latest epoch only", latest},
	} {
		cx := s.Context.WithGraph(row.g)
		bd := cx.Breakdown(ds, classify.Simple)
		total := 0
		for _, n := range bd {
			total += n
		}
		t.Row(row.label, row.g.NumEdges(), stats.Pct(bd[classify.BestShort], total))
	}
	t.Note("aggregation keeps decommissioned links alive (the stale AS3549-Netflix effect) but smooths per-epoch noise")
	t.Render(w)
}
