package experiments

import (
	"context"
	"fmt"
	"io"
	"math/rand"

	"routelab/internal/atlas"
	"routelab/internal/classify"
	"routelab/internal/geo"
	"routelab/internal/inference"
	"routelab/internal/parallel"
	"routelab/internal/relgraph"
	"routelab/internal/report"
	"routelab/internal/scenario"
	"routelab/internal/stats"
)

// AblationProbeRow compares one probe-selection strategy.
type AblationProbeRow struct {
	Selection      string  `json:"selection"`
	Probes         int     `json:"probes"`
	EUSharePct     float64 `json:"eu_share_pct"`
	BestShortPct   float64 `json:"best_short_pct"`
	ContinentalPct float64 `json:"continental_pct"`
}

// AblationThresholdRow is one visibility-threshold sweep point.
type AblationThresholdRow struct {
	Threshold    float64 `json:"threshold"`
	Edges        int     `json:"edges"`
	BestShortPct float64 `json:"best_short_pct"`
}

// AblationAggRow compares one snapshot-aggregation strategy.
type AblationAggRow struct {
	Topology     string  `json:"topology"`
	Edges        int     `json:"edges"`
	BestShortPct float64 `json:"best_short_pct"`
}

// AblationsResult quantifies the design choices DESIGN.md calls out:
// the paper's continent-balanced probe selection (vs the raw EU-skewed
// population), the inference visibility threshold, and the five-epoch
// snapshot aggregation (vs the latest snapshot only).
type AblationsResult struct {
	// ProbeSkipReason is set when the raw-population campaign failed and
	// the probe ablation was skipped.
	ProbeSkipReason string                 `json:"probe_skip_reason,omitempty"`
	ProbeRows       []AblationProbeRow     `json:"probe_rows,omitempty"`
	ThresholdRows   []AblationThresholdRow `json:"threshold_rows"`
	AggregationRows []AblationAggRow       `json:"aggregation_rows"`
}

func computeAblations(ctx context.Context, s *scenario.Scenario, rng *rand.Rand) (*AblationsResult, error) {
	res := &AblationsResult{}
	computeProbeSelectionAblation(res, s, rng)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	computeThresholdAblation(res, s)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	computeAggregationAblation(res, s)
	return res, nil
}

func (r *AblationsResult) render(w io.Writer) {
	if r.ProbeSkipReason != "" {
		fmt.Fprintf(w, "probe ablation skipped: %v\n", r.ProbeSkipReason)
	} else {
		t := report.NewTable("Ablation: probe selection (balanced vs raw population sample)",
			"Selection", "Probes", "EU share%", "Best/Short%", "Continental%")
		for _, row := range r.ProbeRows {
			t.Row(row.Selection, row.Probes, row.EUSharePct, row.BestShortPct, row.ContinentalPct)
		}
		t.Note("the balanced selection is §3.1's defense against the platform's EU deployment skew")
		t.Render(w)
	}
	t := report.NewTable("Ablation: inference visibility threshold",
		"Threshold", "Edges", "Best/Short%")
	for _, row := range r.ThresholdRows {
		t.Row(fmt.Sprintf("%.1f", row.Threshold), row.Edges, row.BestShortPct)
	}
	t.Note("too low mislabels transit as peering; too high invents transit from thin evidence")
	t.Render(w)
	t = report.NewTable("Ablation: snapshot aggregation",
		"Topology", "Edges", "Best/Short%")
	for _, row := range r.AggregationRows {
		t.Row(row.Topology, row.Edges, row.BestShortPct)
	}
	t.Note("aggregation keeps decommissioned links alive (the stale AS3549-Netflix effect) but smooths per-epoch noise")
	t.Render(w)
}

func runAblations(ctx context.Context, env *Env) (Result, error) {
	return computeAblations(ctx, env.S, rand.New(rand.NewSource(env.Seed+2)))
}

// Ablations renders all three ablations from a caller-owned rand stream
// (classic entry point).
func Ablations(w io.Writer, s *scenario.Scenario, rng *rand.Rand) {
	res, err := computeAblations(context.Background(), s, rng)
	if err != nil {
		panic(err) // Background never cancels
	}
	res.render(w)
}

// computeProbeSelectionAblation reruns the campaign with probes drawn
// uniformly from the EU-skewed population — the bias §3.1's balanced
// methodology exists to avoid.
func computeProbeSelectionAblation(res *AblationsResult, s *scenario.Scenario, rng *rand.Rand) {
	all := s.Platform.Probes()
	n := len(s.Probes)
	if n > len(all) {
		n = len(all)
	}
	idx := rng.Perm(len(all))[:n]
	raw := make([]atlas.Probe, 0, n)
	for _, i := range idx {
		raw = append(raw, all[i])
	}
	ms, _, err := s.Campaign(raw, s.Cfg.TracesTarget, rng)
	if err != nil {
		res.ProbeSkipReason = err.Error()
		return
	}
	row := func(label string, probes []atlas.Probe, measurements []classify.Measurement) AblationProbeRow {
		eu := 0
		for _, p := range probes {
			if s.Topo.World.ContinentOf(p.City) == geo.EU {
				eu++
			}
		}
		bd := map[classify.Category]int{}
		contDecisions, allDecisions := 0, 0
		for i := range measurements {
			m := &measurements[i]
			_, confined := m.Continental(s.Topo.World)
			for _, d := range m.Decisions {
				bd[s.Context.Classify(d, classify.Simple)]++
				allDecisions++
				if confined {
					contDecisions++
				}
			}
		}
		return AblationProbeRow{
			Selection:      label,
			Probes:         len(probes),
			EUSharePct:     stats.Pct(eu, len(probes)),
			BestShortPct:   stats.Pct(bd[classify.BestShort], allDecisions),
			ContinentalPct: stats.Pct(contDecisions, allDecisions),
		}
	}
	res.ProbeRows = append(res.ProbeRows,
		row("balanced (paper)", s.Probes, s.Measurements),
		row("raw sample", raw, ms))
}

// computeThresholdAblation sweeps the inference visibility threshold
// and reports the inferred edge count and the downstream Best/Short
// share. Each threshold re-infers and reclassifies the whole dataset
// independently, so the sweep fans out across the worker pool; rows are
// recorded in sweep order either way.
func computeThresholdAblation(res *AblationsResult, s *scenario.Scenario) {
	ds := s.Decisions()
	thresholds := []float64{0.1, 0.2, 0.3, 0.5}
	rows := parallel.MapStage("experiments/threshold-ablation", thresholds, s.Cfg.RoutingWorkers,
		func(_ int, th float64) AblationThresholdRow {
			cfg := inference.DefaultConfig()
			cfg.VisibilityThreshold = th
			cfg.SameOrg = s.Siblings.SameOrg
			gs := make([]*relgraph.Graph, 0, len(s.Snapshots))
			for _, snap := range s.Snapshots {
				gs = append(gs, inference.InferSnapshot(snap, cfg))
			}
			g := inference.Aggregate(gs)
			cx := s.Context.WithGraph(g)
			bd := cx.Breakdown(ds, classify.Simple)
			total := 0
			for _, n := range bd {
				total += n
			}
			return AblationThresholdRow{
				Threshold:    th,
				Edges:        g.NumEdges(),
				BestShortPct: stats.Pct(bd[classify.BestShort], total),
			}
		})
	res.ThresholdRows = rows
}

// computeAggregationAblation compares the paper's five-epoch weighted
// majority against using only the latest snapshot (no stale links, but
// also no smoothing of transient inference errors).
func computeAggregationAblation(res *AblationsResult, s *scenario.Scenario) {
	cfg := inference.DefaultConfig()
	cfg.SameOrg = s.Siblings.SameOrg
	latest := inference.InferSnapshot(s.Snapshots[len(s.Snapshots)-1], cfg)
	ds := s.Decisions()
	for _, row := range []struct {
		label string
		g     *relgraph.Graph
	}{
		{"5-epoch aggregate (paper)", s.Context.Graph},
		{"latest epoch only", latest},
	} {
		cx := s.Context.WithGraph(row.g)
		bd := cx.Breakdown(ds, classify.Simple)
		total := 0
		for _, n := range bd {
			total += n
		}
		res.AggregationRows = append(res.AggregationRows, AblationAggRow{
			Topology:     row.label,
			Edges:        row.g.NumEdges(),
			BestShortPct: stats.Pct(bd[classify.BestShort], total),
		})
	}
}
