package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"sort"

	"routelab/internal/asn"
	"routelab/internal/classify"
	"routelab/internal/inference"
	"routelab/internal/predict"
	"routelab/internal/relgraph"
	"routelab/internal/report"
	"routelab/internal/scenario"
	"routelab/internal/stats"
	"routelab/internal/topology"
)

// InferenceAccuracy scores the inferred relationship database against
// ground truth — the answer key the paper never had. It quantifies the
// error budget feeding every classification experiment.
func InferenceAccuracy(w io.Writer, s *scenario.Scenario) {
	truth := relgraph.FromTopology(s.Topo)
	acc := inference.MeasureAccuracy(s.Context.Graph, truth)
	t := report.NewTable("Appendix: inferred topology vs ground truth", "Metric", "Value")
	t.Row("Ground-truth links visible to monitors", acc.Links)
	t.Row("Labels correct", acc.Correct)
	t.Row("Label accuracy %", stats.Pct(acc.Correct, acc.Links))
	t.Row("Links invisible to monitors", acc.MissingFromInferred)
	t.Row("Stale links (retired but still inferred)", staleCount(s))
	t.Row("Phantom links", acc.ExtraInInferred)

	// Per-truth-label confusion counts.
	confusion := map[[2]topology.Rel]int{}
	for _, e := range truth.Edges() {
		if !s.Context.Graph.HasEdge(e.A, e.B) {
			continue
		}
		confusion[[2]topology.Rel{e.Role, s.Context.Graph.Rel(e.A, e.B)}]++
	}
	type row struct {
		truth, inf topology.Rel
		n          int
	}
	var rows []row
	for k, n := range confusion {
		if k[0] != k[1] {
			rows = append(rows, row{k[0], k[1], n})
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].n > rows[j].n })
	for i, r := range rows {
		if i >= 5 {
			break
		}
		t.Note("top confusion %d: truth=%s inferred=%s (%d links)", i+1, r.truth, r.inf, r.n)
	}
	t.Render(w)
}

// staleCount counts retired ground-truth links the aggregate still
// believes in — the AS3549–Netflix effect.
func staleCount(s *scenario.Scenario) int {
	n := 0
	for _, l := range s.Topo.RetiredLinks {
		if s.Context.Graph.HasEdge(l.Lo, l.Hi) {
			n++
		}
	}
	return n
}

// Prediction evaluates the Gao–Rexford model as a PATH PREDICTOR over
// the measured campaign — the downstream use case (simulation, iPlane-
// style prediction) whose fidelity the paper's whole investigation is
// about. The exact-match rate is the headline "how wrong are our
// simulators" number.
func Prediction(w io.Writer, s *scenario.Scenario) {
	p := predict.New(s.Context.Graph)
	paths := make([][]asn.ASN, 0, len(s.Measurements))
	for i := range s.Measurements {
		paths = append(paths, s.Measurements[i].ASPath)
	}
	sum := p.Evaluate(paths)
	t := report.NewTable("Extension: the model as a path predictor", "Metric", "Value")
	t.Row("Measured paths", sum.Paths)
	t.Row("Paths the model could predict", sum.Predicted)
	t.Row("Exact-path matches %", stats.Pct(sum.Exact, sum.Predicted))
	t.Row("Correct length %", stats.Pct(sum.SameLength, sum.Predicted))
	t.Row("Correct first hop %", stats.Pct(sum.FirstHopCorrect, sum.Predicted))
	t.Note("the gap between first-hop and exact accuracy is the paper's point: models rank neighbors acceptably but mispredict full paths")
	t.Render(w)
}

// CaseStudies hunts the live scenario for concrete instances of the
// §4.4 violation stories: an AS whose discovered preference order
// breaks both model properties, narrated with its relationships.
func CaseStudies(w io.Writer, s *scenario.Scenario, rng *rand.Rand) {
	runs := s.RunAlternatesCampaign(rng)
	fmt.Fprintln(w, "Section 4.4 case studies: preference orders violating both model properties")
	shown := 0
	for _, run := range runs {
		if shown >= 3 {
			break
		}
		if s.Context.ClassifyAlternates(run) != classify.AltNeither || len(run.Steps) < 2 {
			continue
		}
		shown++
		x := s.Topo.AS(run.Target)
		fmt.Fprintf(w, "\ncase %d: %s (%s, %s)\n", shown, run.Target, x.Class, x.HomeCountry)
		for i, st := range run.Steps {
			rel := s.Context.Graph.Rel(run.Target, st.Route.NextHop)
			truRel := s.Topo.Rel(run.Target, st.Route.NextHop)
			nh := s.Topo.AS(st.Route.NextHop)
			kind := ""
			if nh != nil && nh.Class == topology.Research {
				kind = " [research backbone]"
			}
			fmt.Fprintf(w, "  choice #%d: via %s%s, inferred %s (truth %s), path [%s]\n",
				i+1, st.Route.NextHop, kind, rel, truRel, st.Route.Path)
		}
		// The paper's telltale: a later route that is a SUFFIX of the
		// first (the unnecessary-detour pattern).
		first := run.Steps[0].Route.Path.Sequence()
		for _, st := range run.Steps[1:] {
			seq := st.Route.Path.Sequence()
			if isSuffix(seq, first) {
				fmt.Fprintf(w, "  note: the fallback route is a suffix of the first — the first included an unnecessary detour\n")
				break
			}
		}
		if x.ResearchPreference {
			fmt.Fprintf(w, "  ground truth: this AS prefers research paths regardless of business class\n")
		}
	}
	if shown == 0 {
		fmt.Fprintln(w, "  (none found at this seed — paper found 3 among 360 targets)")
	}
	fmt.Fprintln(w)
}

// isSuffix reports whether needle is a suffix of hay.
func isSuffix(needle, hay []asn.ASN) bool {
	if len(needle) == 0 || len(needle) > len(hay) {
		return false
	}
	off := len(hay) - len(needle)
	for i := range needle {
		if hay[off+i] != needle[i] {
			return false
		}
	}
	return true
}
