package experiments

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"sort"

	"routelab/internal/asn"
	"routelab/internal/classify"
	"routelab/internal/inference"
	"routelab/internal/predict"
	"routelab/internal/relgraph"
	"routelab/internal/report"
	"routelab/internal/scenario"
	"routelab/internal/stats"
	"routelab/internal/topology"
)

// --- inference accuracy -----------------------------------------------

// ConfusionRow is one truth-vs-inferred label confusion bucket.
type ConfusionRow struct {
	Truth    string `json:"truth"`
	Inferred string `json:"inferred"`
	N        int    `json:"n"`
}

// AccuracyResult scores the inferred relationship database against
// ground truth — the answer key the paper never had. It quantifies the
// error budget feeding every classification experiment.
type AccuracyResult struct {
	Links               int `json:"links"`
	Correct             int `json:"correct"`
	MissingFromInferred int `json:"missing_from_inferred"`
	Stale               int `json:"stale"`
	Phantom             int `json:"phantom"`
	// TopConfusions are the five largest mislabeled buckets.
	TopConfusions []ConfusionRow `json:"top_confusions"`
}

func computeAccuracy(s *scenario.Scenario) *AccuracyResult {
	truth := relgraph.FromTopology(s.Topo)
	acc := inference.MeasureAccuracy(s.Context.Graph, truth)
	res := &AccuracyResult{
		Links:               acc.Links,
		Correct:             acc.Correct,
		MissingFromInferred: acc.MissingFromInferred,
		Stale:               staleCount(s),
		Phantom:             acc.ExtraInInferred,
	}

	// Per-truth-label confusion counts.
	confusion := map[[2]topology.Rel]int{}
	for _, e := range truth.Edges() {
		if !s.Context.Graph.HasEdge(e.A, e.B) {
			continue
		}
		confusion[[2]topology.Rel{e.Role, s.Context.Graph.Rel(e.A, e.B)}]++
	}
	type row struct {
		truth, inf topology.Rel
		n          int
	}
	var rows []row
	for k, n := range confusion {
		if k[0] != k[1] {
			rows = append(rows, row{k[0], k[1], n})
		}
	}
	// Total order (count desc, then labels) so the top-5 listing does
	// not depend on map iteration order.
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].n != rows[j].n {
			return rows[i].n > rows[j].n
		}
		if rows[i].truth != rows[j].truth {
			return rows[i].truth < rows[j].truth
		}
		return rows[i].inf < rows[j].inf
	})
	for i, r := range rows {
		if i >= 5 {
			break
		}
		res.TopConfusions = append(res.TopConfusions, ConfusionRow{
			Truth: r.truth.String(), Inferred: r.inf.String(), N: r.n,
		})
	}
	return res
}

func (r *AccuracyResult) render(w io.Writer) {
	t := report.NewTable("Appendix: inferred topology vs ground truth", "Metric", "Value")
	t.Row("Ground-truth links visible to monitors", r.Links)
	t.Row("Labels correct", r.Correct)
	t.Row("Label accuracy %", stats.Pct(r.Correct, r.Links))
	t.Row("Links invisible to monitors", r.MissingFromInferred)
	t.Row("Stale links (retired but still inferred)", r.Stale)
	t.Row("Phantom links", r.Phantom)
	for i, c := range r.TopConfusions {
		t.Note("top confusion %d: truth=%s inferred=%s (%d links)", i+1, c.Truth, c.Inferred, c.N)
	}
	t.Render(w)
}

func runAccuracy(ctx context.Context, env *Env) (Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return computeAccuracy(env.S), nil
}

// InferenceAccuracy renders the accuracy appendix directly (classic
// entry point).
func InferenceAccuracy(w io.Writer, s *scenario.Scenario) { computeAccuracy(s).render(w) }

// staleCount counts retired ground-truth links the aggregate still
// believes in — the AS3549–Netflix effect.
func staleCount(s *scenario.Scenario) int {
	n := 0
	for _, l := range s.Topo.RetiredLinks {
		if s.Context.Graph.HasEdge(l.Lo, l.Hi) {
			n++
		}
	}
	return n
}

// --- path prediction --------------------------------------------------

// PredictionResult evaluates the Gao–Rexford model as a PATH PREDICTOR
// over the measured campaign — the downstream use case (simulation,
// iPlane-style prediction) whose fidelity the paper's whole
// investigation is about. The exact-match rate is the headline "how
// wrong are our simulators" number.
type PredictionResult struct {
	Paths           int `json:"paths"`
	Predicted       int `json:"predicted"`
	Exact           int `json:"exact"`
	SameLength      int `json:"same_length"`
	FirstHopCorrect int `json:"first_hop_correct"`
}

func computePrediction(s *scenario.Scenario) *PredictionResult {
	p := predict.New(s.Context.Graph)
	paths := make([][]asn.ASN, 0, len(s.Measurements))
	for i := range s.Measurements {
		paths = append(paths, s.Measurements[i].ASPath)
	}
	sum := p.Evaluate(paths)
	return &PredictionResult{
		Paths:           sum.Paths,
		Predicted:       sum.Predicted,
		Exact:           sum.Exact,
		SameLength:      sum.SameLength,
		FirstHopCorrect: sum.FirstHopCorrect,
	}
}

func (r *PredictionResult) render(w io.Writer) {
	t := report.NewTable("Extension: the model as a path predictor", "Metric", "Value")
	t.Row("Measured paths", r.Paths)
	t.Row("Paths the model could predict", r.Predicted)
	t.Row("Exact-path matches %", stats.Pct(r.Exact, r.Predicted))
	t.Row("Correct length %", stats.Pct(r.SameLength, r.Predicted))
	t.Row("Correct first hop %", stats.Pct(r.FirstHopCorrect, r.Predicted))
	t.Note("the gap between first-hop and exact accuracy is the paper's point: models rank neighbors acceptably but mispredict full paths")
	t.Render(w)
}

func runPrediction(ctx context.Context, env *Env) (Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return computePrediction(env.S), nil
}

// Prediction renders the path-predictor extension directly (classic
// entry point).
func Prediction(w io.Writer, s *scenario.Scenario) { computePrediction(s).render(w) }

// --- §4.4 case studies ------------------------------------------------

// CaseStep is one discovered route in a case study's preference order.
type CaseStep struct {
	NextHop string `json:"next_hop"`
	// Kind is the rendered annotation for notable next hops (e.g.
	// " [research backbone]"), empty otherwise.
	Kind     string `json:"kind,omitempty"`
	Inferred string `json:"inferred"`
	Truth    string `json:"truth"`
	Path     string `json:"path"`
}

// CaseStudy narrates one AS whose discovered preference order breaks
// both model properties.
type CaseStudy struct {
	Target  string     `json:"target"`
	Class   string     `json:"class"`
	Country string     `json:"country"`
	Steps   []CaseStep `json:"steps"`
	// SuffixNote marks the paper's telltale: a later route that is a
	// SUFFIX of the first (the unnecessary-detour pattern).
	SuffixNote bool `json:"suffix_note"`
	// ResearchPreference marks ground-truth research-path preference.
	ResearchPreference bool `json:"research_preference"`
}

// CaseStudiesResult hunts the live scenario for concrete instances of
// the §4.4 violation stories, narrated with their relationships.
type CaseStudiesResult struct {
	Cases []CaseStudy `json:"cases"`
}

func computeCaseStudies(s *scenario.Scenario, rng *rand.Rand) *CaseStudiesResult {
	runs := s.RunAlternatesCampaign(rng)
	res := &CaseStudiesResult{}
	for _, run := range runs {
		if len(res.Cases) >= 3 {
			break
		}
		if s.Context.ClassifyAlternates(run) != classify.AltNeither || len(run.Steps) < 2 {
			continue
		}
		x := s.Topo.AS(run.Target)
		c := CaseStudy{
			Target:             run.Target.String(),
			Class:              x.Class.String(),
			Country:            string(x.HomeCountry),
			ResearchPreference: x.ResearchPreference,
		}
		for _, st := range run.Steps {
			rel := s.Context.Graph.Rel(run.Target, st.Route.NextHop)
			truRel := s.Topo.Rel(run.Target, st.Route.NextHop)
			nh := s.Topo.AS(st.Route.NextHop)
			kind := ""
			if nh != nil && nh.Class == topology.Research {
				kind = " [research backbone]"
			}
			c.Steps = append(c.Steps, CaseStep{
				NextHop:  st.Route.NextHop.String(),
				Kind:     kind,
				Inferred: rel.String(),
				Truth:    truRel.String(),
				Path:     st.Route.Path.String(),
			})
		}
		first := run.Steps[0].Route.Path.Sequence()
		for _, st := range run.Steps[1:] {
			if isSuffix(st.Route.Path.Sequence(), first) {
				c.SuffixNote = true
				break
			}
		}
		res.Cases = append(res.Cases, c)
	}
	return res
}

func (r *CaseStudiesResult) render(w io.Writer) {
	fmt.Fprintln(w, "Section 4.4 case studies: preference orders violating both model properties")
	for i, c := range r.Cases {
		fmt.Fprintf(w, "\ncase %d: %s (%s, %s)\n", i+1, c.Target, c.Class, c.Country)
		for j, st := range c.Steps {
			fmt.Fprintf(w, "  choice #%d: via %s%s, inferred %s (truth %s), path [%s]\n",
				j+1, st.NextHop, st.Kind, st.Inferred, st.Truth, st.Path)
		}
		if c.SuffixNote {
			fmt.Fprintf(w, "  note: the fallback route is a suffix of the first — the first included an unnecessary detour\n")
		}
		if c.ResearchPreference {
			fmt.Fprintf(w, "  ground truth: this AS prefers research paths regardless of business class\n")
		}
	}
	if len(r.Cases) == 0 {
		fmt.Fprintln(w, "  (none found at this seed — paper found 3 among 360 targets)")
	}
	fmt.Fprintln(w)
}

func runCaseStudies(ctx context.Context, env *Env) (Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return computeCaseStudies(env.S, rand.New(rand.NewSource(env.Seed+3))), nil
}

// CaseStudies renders the §4.4 case studies from a caller-owned rand
// stream (classic entry point).
func CaseStudies(w io.Writer, s *scenario.Scenario, rng *rand.Rand) {
	computeCaseStudies(s, rng).render(w)
}

// isSuffix reports whether needle is a suffix of hay.
func isSuffix(needle, hay []asn.ASN) bool {
	if len(needle) == 0 || len(needle) > len(hay) {
		return false
	}
	off := len(hay) - len(needle)
	for i := range needle {
		if hay[off+i] != needle[i] {
			return false
		}
	}
	return true
}
