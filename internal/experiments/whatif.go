package experiments

import (
	"context"
	"fmt"
	"io"

	"routelab/internal/report"
	"routelab/internal/whatif"
)

// --- what-if delta probes ---------------------------------------------

// WhatIfRow is one delta's reconvergence outcome: how many best-path
// decisions changed, split by shape, plus the churn the incremental
// reconvergence paid.
type WhatIfRow struct {
	Delta    string `json:"delta"`
	Kind     string `json:"kind"`
	Affected int    `json:"affected"`
	Gained   int    `json:"gained"`
	Lost     int    `json:"lost"`
	Moved    int    `json:"moved"`
	Events   int    `json:"events"`
	Churn    int    `json:"churn"`
}

// WhatIfResult reports a deterministic sweep of typed what-if deltas —
// the §3.2-style counterfactual probes — each evaluated on its own COW
// fork of the testbed's frozen converged anycast base.
type WhatIfResult struct {
	Prefix string      `json:"prefix"`
	Origin string      `json:"origin"`
	Rows   []WhatIfRow `json:"rows"`
}

func (r *WhatIfResult) render(w io.Writer) {
	t := report.NewTable("What-if engine: delta probes over the anycast base",
		"Delta", "Affected", "Gained", "Lost", "Moved", "Events", "Churn")
	for _, row := range r.Rows {
		t.Row(row.Delta, row.Affected, row.Gained, row.Lost, row.Moved, row.Events, row.Churn)
	}
	t.Note("prefix %s, origin %s; every delta forks the same frozen base (independent counterfactuals)",
		r.Prefix, r.Origin)
	t.Render(w)
}

// runWhatIf sweeps one delta of every applicable kind over the
// testbed. The set is a pure function of the sealed scenario (origin
// and muxes always exist), so the result is deterministic and
// cacheable like every other experiment.
func runWhatIf(ctx context.Context, env *Env) (Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	tb := env.S.Testbed
	origin, mux0 := tb.Origin, tb.Muxes[0]
	mux1 := tb.Muxes[1%len(tb.Muxes)]
	ds := []whatif.Delta{
		{Kind: whatif.LinkFailure, A: origin.String(), B: mux0.String()},
		{Kind: whatif.Poison, Poisoned: []string{mux0.String()}},
		{Kind: whatif.Poison, Poisoned: []string{mux0.String(), mux1.String()}},
		{Kind: whatif.Prepend, Prepend: 3},
		{Kind: whatif.LocalPref, At: mux0.String(), From: origin.String(), Pref: 10},
		{Kind: whatif.Withdraw},
	}
	cds, err := whatif.CompileAll(ds, env.S.Topo, origin)
	if err != nil {
		return nil, fmt.Errorf("whatif: %w", err)
	}
	prefix := tb.Prefixes[0]
	base := tb.AnycastBase(prefix)
	res := &WhatIfResult{Prefix: prefix.String(), Origin: origin.String()}
	for _, cd := range cds {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		d, err := whatif.Eval(base, cd)
		if err != nil {
			return nil, fmt.Errorf("whatif: %s: %w", cd.Canonical(), err)
		}
		if !d.Converged {
			return nil, fmt.Errorf("whatif: %s did not reconverge", cd.Canonical())
		}
		res.Rows = append(res.Rows, WhatIfRow{
			Delta:    d.Delta,
			Kind:     d.Kind,
			Affected: d.Affected,
			Gained:   d.Gained,
			Lost:     d.Lost,
			Moved:    d.Moved,
			Events:   d.Events,
			Churn:    d.Churn,
		})
	}
	return res, nil
}
