# Tier-1 verification for routelab. `make verify` is the gate every
# change must pass: it builds everything, vets (including the copylocks
# and concurrency-sensitive checks), and runs the full test suite under
# the race detector — the concurrency model in DESIGN.md is only
# trustworthy while this stays green.

GO ?= go

.PHONY: verify build vet test race bench

verify: build vet race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .
