# Tier-1 verification for routelab. `make verify` is the gate every
# change must pass: it builds everything, vets (including the copylocks
# and concurrency-sensitive checks), runs routelint (the in-tree
# invariant analyzers, DESIGN.md §11), and runs the full test suite
# under the race detector — the concurrency model in DESIGN.md is only
# trustworthy while this stays green. CI (.github/workflows/ci.yml)
# runs verify plus lint, cover, and bench-smoke on every push/PR.

GO ?= go
STATICCHECK ?= staticcheck

.PHONY: verify build vet test race bench bench-smoke service-smoke lint staticcheck routelint lint-json cover

verify: build vet routelint race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# bench-smoke is CI's one-iteration sweep: it exercises every benchmark
# once and validates the machine-readable BENCH_routelab.json emission.
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .
	$(GO) run ./cmd/benchcheck BENCH_routelab.json

# service-smoke boots routelabd on a tiny scenario, curls every /v1
# endpoint, validates the routelab-api/v1 envelopes with cmd/apicheck,
# and checks the SIGTERM graceful drain (scripts/service_smoke.sh).
service-smoke:
	bash scripts/service_smoke.sh

# lint runs both linters: staticcheck (general Go hygiene) and
# routelint (this repo's own invariants — see DESIGN.md §11).
lint: staticcheck routelint

# staticcheck is the external linter (CI installs it with
# `go install honnef.co/go/tools/cmd/staticcheck@2025.1.1`).
staticcheck:
	@command -v $(STATICCHECK) >/dev/null 2>&1 || { \
		echo "staticcheck not found; install it with:"; \
		echo "  go install honnef.co/go/tools/cmd/staticcheck@2025.1.1"; \
		exit 1; }
	$(STATICCHECK) ./...

# routelint is the in-tree, dependency-free analyzer suite enforcing the
# repo's determinism/sealing/hot-path invariants (cmd/routelint). It is
# part of `make verify`: a violation fails tier-1, not just CI.
routelint:
	$(GO) run ./cmd/routelint ./...

# lint-json emits the machine-readable routelab-lint/v1 report and
# validates it with cmd/lintcheck (CI archives LINT_routelab.json).
lint-json:
	$(GO) run ./cmd/routelint -format=json ./... > LINT_routelab.json
	$(GO) run ./cmd/lintcheck LINT_routelab.json

cover:
	$(GO) test -coverprofile=cover.out ./...
	$(GO) tool cover -func=cover.out | tail -n 1
