# Tier-1 verification for routelab. `make verify` is the gate every
# change must pass: it builds everything, vets (including the copylocks
# and concurrency-sensitive checks), and runs the full test suite under
# the race detector — the concurrency model in DESIGN.md is only
# trustworthy while this stays green. CI (.github/workflows/ci.yml)
# runs verify plus lint, cover, and bench-smoke on every push/PR.

GO ?= go
STATICCHECK ?= staticcheck

.PHONY: verify build vet test race bench bench-smoke service-smoke lint cover

verify: build vet race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# bench-smoke is CI's one-iteration sweep: it exercises every benchmark
# once and validates the machine-readable BENCH_routelab.json emission.
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .
	$(GO) run ./cmd/benchcheck BENCH_routelab.json

# service-smoke boots routelabd on a tiny scenario, curls every /v1
# endpoint, validates the routelab-api/v1 envelopes with cmd/apicheck,
# and checks the SIGTERM graceful drain (scripts/service_smoke.sh).
service-smoke:
	bash scripts/service_smoke.sh

# lint runs staticcheck (CI installs it with
# `go install honnef.co/go/tools/cmd/staticcheck@2025.1.1`).
lint:
	@command -v $(STATICCHECK) >/dev/null 2>&1 || { \
		echo "staticcheck not found; install it with:"; \
		echo "  go install honnef.co/go/tools/cmd/staticcheck@2025.1.1"; \
		exit 1; }
	$(STATICCHECK) ./...

cover:
	$(GO) test -coverprofile=cover.out ./...
	$(GO) tool cover -func=cover.out | tail -n 1
