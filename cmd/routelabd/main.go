// Command routelabd serves the reproduction as a long-running query
// service: it builds one sealed Scenario at startup (the expensive
// part) and then answers classification, alternate-route, experiment,
// and topology queries over HTTP/JSON — the versioned routelab-api/v1
// (see internal/service).
//
// Usage:
//
//	routelabd [flags]
//
// Flags:
//
//	-addr ADDR          listen address (default localhost:8080)
//	-spec PATH          build the world a declarative scenario spec
//	                    describes (scenarios/*.yaml; see SCENARIOS.md)
//	-overlay A,B        overlay names to apply on top of -spec, in order
//	-seed N             master seed (default 2015)
//	-scale F            topology scale factor (default 1.0; 0.05 is smoke-test fast)
//	-traces N           traceroute campaign size (default 28510)
//	-probes N           selected probe count (default 1998)
//	-workers N          parallel routing workers (0 = GOMAXPROCS, 1 = serial)
//	-max-concurrent N   concurrent request computations (0 = GOMAXPROCS)
//	-request-timeout D  per-request deadline (0 = none); expiry returns 504
//	-cache N            response cache entries (default 256)
//	-drain D            shutdown drain budget for in-flight requests (default 30s)
//	-quiet              suppress build progress
//	-metrics-json PATH  write the obs run report as JSON on exit
//	-debug-addr ADDR    serve net/http/pprof and expvar on ADDR
//
// On SIGINT/SIGTERM the server stops accepting connections and drains
// in-flight requests (up to -drain), then exits 0. Responses are
// byte-identical for any -workers / -max-concurrent values and any mix
// of concurrent clients — the build-time determinism contract extended
// to serve time.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"routelab/internal/obs"
	"routelab/internal/scenario"
	"routelab/internal/service"
	"routelab/internal/spec"
)

// splitOverlays parses the -overlay flag's comma-separated list.
func splitOverlays(s string) []string {
	var out []string
	for _, name := range strings.Split(s, ",") {
		if name = strings.TrimSpace(name); name != "" {
			out = append(out, name)
		}
	}
	return out
}

func main() {
	var (
		addr        = flag.String("addr", "localhost:8080", "listen address")
		specPath    = flag.String("spec", "", "scenario spec file (YAML/JSON; see SCENARIOS.md)")
		overlayList = flag.String("overlay", "", "comma-separated overlay names to apply (requires -spec)")
		seed        = flag.Int64("seed", 2015, "master seed")
		scale       = flag.Float64("scale", 1.0, "topology scale factor")
		traces      = flag.Int("traces", 28510, "traceroute campaign size")
		probes      = flag.Int("probes", 1998, "selected probe count")
		workers     = flag.Int("workers", 0, "parallel routing workers (0 = all cores, 1 = serial)")
		maxConc     = flag.Int("max-concurrent", 0, "concurrent request computations (0 = all cores)")
		reqTimeout  = flag.Duration("request-timeout", 0, "per-request deadline (0 = none)")
		cacheSize   = flag.Int("cache", 256, "response cache entries")
		drain       = flag.Duration("drain", 30*time.Second, "shutdown drain budget")
		quiet       = flag.Bool("quiet", false, "suppress build progress")
		metricsJSON = flag.String("metrics-json", "", "write a structured metrics report (JSON) to this path on exit")
		debugAddr   = flag.String("debug-addr", "", "serve net/http/pprof and expvar on this address")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintf(os.Stderr, "routelabd: unexpected arguments: %v\n", flag.Args())
		flag.Usage()
		os.Exit(2)
	}

	var cfg scenario.Config
	if *specPath != "" {
		exp, err := spec.Expand(*specPath, splitOverlays(*overlayList))
		if err != nil {
			fmt.Fprintln(os.Stderr, "routelabd: spec:", err)
			os.Exit(2)
		}
		cfg = exp.Config
		// Explicitly-passed flags still win over the spec; defaults do
		// not. The spec's campaign sizing is authoritative, so the
		// small-scale probe adjustment below is skipped here (same
		// semantics as cmd/routelab).
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "seed":
				cfg.Seed = *seed
			case "scale":
				cfg.Topology.Scale = *scale
			case "traces":
				cfg.TracesTarget = *traces
			case "probes":
				cfg.NumProbes = *probes
			case "workers":
				cfg.RoutingWorkers = *workers
			}
		})
	} else {
		if *overlayList != "" {
			fmt.Fprintln(os.Stderr, "routelabd: -overlay requires -spec")
			os.Exit(2)
		}
		cfg = scenario.DefaultConfig()
		cfg.Seed = *seed
		cfg.Topology.Scale = *scale
		cfg.TracesTarget = *traces
		cfg.NumProbes = *probes
		cfg.RoutingWorkers = *workers
		if *scale < 0.5 {
			// Small topologies have proportionally fewer probes available
			// (same adjustment as cmd/routelab).
			cfg.NumProbes = int(float64(cfg.NumProbes) * *scale * 2)
			if cfg.NumProbes < 60 {
				cfg.NumProbes = 60
			}
			cfg.TracesTarget = int(float64(cfg.TracesTarget) * *scale * 2)
		}
	}
	if err := cfg.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "routelabd: invalid flags:", err)
		os.Exit(2)
	}

	if *debugAddr != "" {
		obs.Default().PublishExpvar("routelab")
		ln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "routelabd: debug server:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "debug server: http://%s/debug/pprof/ and /debug/vars\n", ln.Addr())
		go func() {
			if err := http.Serve(ln, nil); err != nil {
				fmt.Fprintln(os.Stderr, "routelabd: debug server:", err)
			}
		}()
	}

	logf := scenario.Logf(nil)
	if !*quiet {
		logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}

	start := time.Now()
	writeMetrics := func() {
		if *metricsJSON == "" {
			return
		}
		rep := obs.NewReport()
		rep.Command = "routelabd " + strings.Join(os.Args[1:], " ")
		rep.Seed = cfg.Seed
		rep.Scale = cfg.Topology.Scale
		rep.Workers = cfg.RoutingWorkers
		rep.WallNS = int64(time.Since(start))
		rep.Metrics = obs.Snap()
		if err := rep.WriteFile(*metricsJSON); err != nil {
			fmt.Fprintln(os.Stderr, "routelabd: metrics:", err)
		} else if !*quiet {
			fmt.Fprintf(os.Stderr, "metrics report written to %s\n", *metricsJSON)
		}
	}

	s, err := scenario.Build(cfg, logf)
	if err != nil {
		fmt.Fprintln(os.Stderr, "routelabd:", err)
		os.Exit(1)
	}

	srv := service.New(s, service.Config{
		MaxConcurrent:  *maxConc,
		RequestTimeout: *reqTimeout,
		CacheSize:      *cacheSize,
	})
	httpSrv := &http.Server{Handler: srv.Handler()}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "routelabd:", err)
		os.Exit(1)
	}
	// The smoke test and other supervisors wait for this line before
	// sending traffic.
	fmt.Fprintf(os.Stderr, "routelabd: serving routelab-api/v1 on http://%s/v1/\n", ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		fmt.Fprintln(os.Stderr, "routelabd:", err)
		writeMetrics()
		os.Exit(1)
	case <-ctx.Done():
	}

	// Graceful shutdown: stop accepting, drain in-flight requests.
	fmt.Fprintln(os.Stderr, "routelabd: shutting down, draining in-flight requests")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		fmt.Fprintln(os.Stderr, "routelabd: shutdown:", err)
		writeMetrics()
		os.Exit(1)
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "routelabd:", err)
		writeMetrics()
		os.Exit(1)
	}
	writeMetrics()
	fmt.Fprintln(os.Stderr, "routelabd: drained, bye")
}
