// Command routelabd serves the reproduction as a long-running query
// service over HTTP/JSON — the versioned routelab-api/v1 (see
// internal/service). It runs in one of two modes:
//
// Single-scenario (default): build one sealed Scenario at startup (the
// expensive part) from flags or a -spec document, then answer
// classification, alternate-route, experiment, and topology queries
// under /v1/.
//
// Fleet (-scenario-dir): register every routelab-spec/v1 document in a
// directory at boot — plus any admitted later via POST /v1/scenarios —
// and serve them side by side under /v1/scenarios/{id}/..., building
// each sealed scenario on first use, keeping up to -max-scenarios
// resident (LRU), coalescing concurrent builds of the same id, and
// giving every scenario its own admission gate, warm fork pools, and a
// partition of the shared response cache.
//
// Usage:
//
//	routelabd [flags]
//
// Flags:
//
//	-addr ADDR          listen address (default localhost:8080)
//	-scenario-dir DIR   serve a fleet: register every spec in DIR
//	-max-scenarios N    sealed scenarios kept resident (default 4)
//	-max-scenario-bytes N  resident-byte budget for sealed scenarios
//	                    (0 = count budget; when set, -max-scenarios is ignored
//	                    and eviction is by accounted bytes, LRU order)
//	-max-builds N       concurrent scenario builds (default 1)
//	-max-queued-builds N   callers allowed to queue for a build slot before
//	                    new builds shed 429 (0 = unbounded queue)
//	-max-queued-requests N callers allowed to queue on a tenant's admission
//	                    gate before requests shed 429 (0 = unbounded queue)
//	-spec PATH          build the world a declarative scenario spec
//	                    describes (scenarios/*.yaml; see SCENARIOS.md)
//	-overlay A,B        overlay names to apply on top of -spec, in order
//	-seed N             master seed (default 2015)
//	-scale F            topology scale factor (default 1.0; 0.05 is smoke-test fast)
//	-traces N           traceroute campaign size (default 28510)
//	-probes N           selected probe count (default 1998)
//	-workers N          parallel routing workers (0 = GOMAXPROCS, 1 = serial)
//	-max-concurrent N   concurrent request computations per scenario (0 = GOMAXPROCS)
//	-request-timeout D  per-request deadline (0 = none); expiry returns 504
//	-cache N            response cache entries (default 256; shared across the fleet)
//	-fork-pool N        warm forks kept per testbed prefix (default 2)
//	-drain D            shutdown drain budget for in-flight requests (default 30s)
//	-quiet              suppress build progress
//	-metrics-json PATH  write the obs run report as JSON on exit
//	-debug-addr ADDR    serve net/http/pprof and expvar on ADDR
//
// On SIGINT/SIGTERM the server stops accepting connections and drains
// in-flight requests (up to -drain), then exits 0. Responses are
// byte-identical per scenario for any -workers / -max-concurrent
// values and any mix of concurrent clients — the build-time
// determinism contract extended to serve time, and to fleet time.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"routelab/internal/obs"
	"routelab/internal/scenario"
	"routelab/internal/service"
	"routelab/internal/spec"
)

// splitOverlays parses the -overlay flag's comma-separated list.
func splitOverlays(s string) []string {
	var out []string
	for _, name := range strings.Split(s, ",") {
		if name = strings.TrimSpace(name); name != "" {
			out = append(out, name)
		}
	}
	return out
}

func main() {
	var (
		addr         = flag.String("addr", "localhost:8080", "listen address")
		scenarioDir  = flag.String("scenario-dir", "", "serve a fleet: register every scenario spec in this directory")
		maxScenarios = flag.Int("max-scenarios", 4, "sealed scenarios kept resident (fleet mode)")
		maxScenBytes = flag.Int64("max-scenario-bytes", 0, "resident-byte budget for sealed scenarios; overrides -max-scenarios (fleet mode, 0 = off)")
		maxBuilds    = flag.Int("max-builds", 1, "concurrent scenario builds (fleet mode)")
		maxQBuilds   = flag.Int("max-queued-builds", 0, "build-queue depth before shedding 429 (fleet mode, 0 = unbounded)")
		maxQRequests = flag.Int("max-queued-requests", 0, "admission-queue depth per scenario before shedding 429 (0 = unbounded)")
		specPath     = flag.String("spec", "", "scenario spec file (YAML/JSON; see SCENARIOS.md)")
		overlayList  = flag.String("overlay", "", "comma-separated overlay names to apply (requires -spec)")
		seed         = flag.Int64("seed", 2015, "master seed")
		scale        = flag.Float64("scale", 1.0, "topology scale factor")
		traces       = flag.Int("traces", 28510, "traceroute campaign size")
		probes       = flag.Int("probes", 1998, "selected probe count")
		workers      = flag.Int("workers", 0, "parallel routing workers (0 = all cores, 1 = serial)")
		maxConc      = flag.Int("max-concurrent", 0, "concurrent request computations per scenario (0 = all cores)")
		reqTimeout   = flag.Duration("request-timeout", 0, "per-request deadline (0 = none)")
		cacheSize    = flag.Int("cache", 256, "response cache entries")
		forkPool     = flag.Int("fork-pool", 0, "warm forks kept per testbed prefix (0 = default)")
		drain        = flag.Duration("drain", 30*time.Second, "shutdown drain budget")
		quiet        = flag.Bool("quiet", false, "suppress build progress")
		metricsJSON  = flag.String("metrics-json", "", "write a structured metrics report (JSON) to this path on exit")
		debugAddr    = flag.String("debug-addr", "", "serve net/http/pprof and expvar on this address")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintf(os.Stderr, "routelabd: unexpected arguments: %v\n", flag.Args())
		flag.Usage()
		os.Exit(2)
	}

	tenantCfg := service.Config{
		MaxConcurrent:     *maxConc,
		MaxQueuedRequests: *maxQRequests,
		RequestTimeout:    *reqTimeout,
		CacheSize:         *cacheSize,
		ForkPool:          *forkPool,
	}

	logf := scenario.Logf(nil)
	if !*quiet {
		logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}

	var cfg scenario.Config // single-scenario mode only
	if *scenarioDir != "" {
		// Fleet mode: each registered spec is the whole world
		// description, so the single-scenario shape flags don't apply.
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "spec", "overlay", "seed", "scale", "traces", "probes", "workers":
				fmt.Fprintf(os.Stderr, "routelabd: -%s does not apply in fleet mode (-scenario-dir); the specs are authoritative\n", f.Name)
				os.Exit(2)
			}
		})
	} else if *specPath != "" {
		exp, err := spec.Expand(*specPath, splitOverlays(*overlayList))
		if err != nil {
			fmt.Fprintln(os.Stderr, "routelabd: spec:", err)
			os.Exit(2)
		}
		cfg = exp.Config
		// Explicitly-passed flags still win over the spec; defaults do
		// not. The spec's campaign sizing is authoritative, so the
		// small-scale probe adjustment below is skipped here (same
		// semantics as cmd/routelab).
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "seed":
				cfg.Seed = *seed
			case "scale":
				cfg.Topology.Scale = *scale
			case "traces":
				cfg.TracesTarget = *traces
			case "probes":
				cfg.NumProbes = *probes
			case "workers":
				cfg.RoutingWorkers = *workers
			}
		})
	} else {
		if *overlayList != "" {
			fmt.Fprintln(os.Stderr, "routelabd: -overlay requires -spec")
			os.Exit(2)
		}
		cfg = scenario.DefaultConfig()
		cfg.Seed = *seed
		cfg.Topology.Scale = *scale
		cfg.TracesTarget = *traces
		cfg.NumProbes = *probes
		cfg.RoutingWorkers = *workers
		if *scale < 0.5 {
			// Small topologies have proportionally fewer probes available
			// (same adjustment as cmd/routelab).
			cfg.NumProbes = int(float64(cfg.NumProbes) * *scale * 2)
			if cfg.NumProbes < 60 {
				cfg.NumProbes = 60
			}
			cfg.TracesTarget = int(float64(cfg.TracesTarget) * *scale * 2)
		}
	}
	if *scenarioDir == "" {
		if err := cfg.Validate(); err != nil {
			fmt.Fprintln(os.Stderr, "routelabd: invalid flags:", err)
			os.Exit(2)
		}
	}

	if *debugAddr != "" {
		obs.Default().PublishExpvar("routelab")
		ln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "routelabd: debug server:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "debug server: http://%s/debug/pprof/ and /debug/vars\n", ln.Addr())
		go func() {
			if err := http.Serve(ln, nil); err != nil {
				fmt.Fprintln(os.Stderr, "routelabd: debug server:", err)
			}
		}()
	}

	start := time.Now()
	writeMetrics := func() {
		if *metricsJSON == "" {
			return
		}
		rep := obs.NewReport()
		rep.Command = "routelabd " + strings.Join(os.Args[1:], " ")
		rep.Seed = cfg.Seed
		rep.Scale = cfg.Topology.Scale
		rep.Workers = cfg.RoutingWorkers
		rep.WallNS = int64(time.Since(start))
		rep.Metrics = obs.Snap()
		if err := rep.WriteFile(*metricsJSON); err != nil {
			fmt.Fprintln(os.Stderr, "routelabd: metrics:", err)
		} else if !*quiet {
			fmt.Fprintf(os.Stderr, "metrics report written to %s\n", *metricsJSON)
		}
	}

	var handler http.Handler
	// closeServing joins serving-side background goroutines (fork-pool
	// refills) after the HTTP drain, so a clean exit leaves nothing
	// running.
	var closeServing func()
	if *scenarioDir != "" {
		store := service.NewStore(service.StoreConfig{
			MaxScenarios:     *maxScenarios,
			MaxScenarioBytes: *maxScenBytes,
			MaxBuilds:        *maxBuilds,
			MaxQueuedBuilds:  *maxQBuilds,
			CacheSize:        *cacheSize,
			Tenant:           tenantCfg,
			Logf:             logf,
		})
		n, err := store.RegisterDir(*scenarioDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "routelabd:", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "routelabd: fleet of %d scenario(s) from %s: %s\n",
			n, *scenarioDir, strings.Join(store.IDs(), ", "))
		handler = service.NewFleet(store).Handler()
		closeServing = store.Close
	} else {
		s, err := scenario.Build(cfg, logf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "routelabd:", err)
			os.Exit(1)
		}
		srv := service.New(s, tenantCfg)
		handler = srv.Handler()
		closeServing = srv.Close
	}

	httpSrv := &http.Server{Handler: handler}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "routelabd:", err)
		os.Exit(1)
	}
	// The smoke tests and other supervisors wait for this line before
	// sending traffic.
	fmt.Fprintf(os.Stderr, "routelabd: serving routelab-api/v1 on http://%s/v1/\n", ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		fmt.Fprintln(os.Stderr, "routelabd:", err)
		writeMetrics()
		os.Exit(1)
	case <-ctx.Done():
	}

	// Graceful shutdown: stop accepting, drain in-flight requests.
	fmt.Fprintln(os.Stderr, "routelabd: shutting down, draining in-flight requests")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		fmt.Fprintln(os.Stderr, "routelabd: shutdown:", err)
		writeMetrics()
		os.Exit(1)
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "routelabd:", err)
		writeMetrics()
		os.Exit(1)
	}
	closeServing()
	writeMetrics()
	fmt.Fprintln(os.Stderr, "routelabd: drained, bye")
}
