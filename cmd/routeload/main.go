// Command routeload drives a running routelabd fleet with N concurrent
// clients over a mixed scenario/endpoint schedule and emits a
// routelab-load/v1 report (throughput, p50/p90/p99 latency, time-
// bucketed histograms, error/shed/cache rates, per-endpoint and
// per-scenario breakdowns) that cmd/loadcheck validates and gates on —
// the serve-time counterpart of the bench harness + cmd/benchcheck
// pair.
//
// Usage:
//
//	routeload [flags]
//
// Flags:
//
//	-addr ADDR       routelabd address (default localhost:8080)
//	-scenarios A,B   scenario ids to drive (default: every id the fleet
//	                 lists — beware, that builds every registered world)
//	-clients N       concurrent clients (default 8; sustained mode
//	                 scales to thousands — the transport keeps one warm
//	                 connection per client)
//	-requests N      total request budget across all clients (default
//	                 200; ignored when -duration is set)
//	-duration D      sustained mode: every client loops the schedule
//	                 until D elapses (0 = request-budget mode)
//	-bucket D        time-bucket width for the latency histogram
//	                 (default 1s; 0 disables bucketing)
//	-spread N        vary the experiments endpoint's seed over N
//	                 distinct values (0 = off). Concurrent requests to
//	                 one URL coalesce server-side and coalesced waiters
//	                 never shed; saturation legs set -spread so the
//	                 schedule carries distinct cache keys and actually
//	                 pressures the admission gate
//	-cold A,B        scenario ids to drive WITHOUT warmup: only a
//	                 healthz target each, so the first touch triggers
//	                 the (slow) build during the measured run. With
//	                 three or more cold ids and tight build gates the
//	                 overflow must shed — the deterministic leg of the
//	                 saturation smoke
//	-timeout D       per-request client timeout (default 5m; first
//	                 requests wait on scenario builds)
//	-out PATH        write the routelab-load/v1 emission here
//	                 (default LOAD_routelab.json; "" skips the file)
//
// The schedule is deterministic: request j targets urls[j mod len] and
// walks the endpoint mix in order. In request-budget mode jobs are
// handed to clients in order; in sustained mode client c owns
// positions c, c+N, c+2N, ... so two runs issue the same per-client
// request sequences (only the stop point varies with the clock).
// Every response body is validated against routelab-api/v1; a
// transport error, an unexpected status, or an invalid envelope counts
// as an error in the report (and loadcheck fails CI on any). A 429
// whose envelope carries the "overloaded" code AND a Retry-After
// header is a CLEAN SHED — counted separately, not an error — which is
// how the saturation smoke distinguishes deliberate load shedding from
// breakage.
//
// Warmup (one healthz per scenario to trigger the build, plus probe
// requests to discover a live trace id and AS) happens before the
// clock starts; the report measures steady-state serving only.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"
	"sync"
	"text/tabwriter"
	"time"

	"routelab/internal/service"
)

func main() {
	var (
		addr      = flag.String("addr", "localhost:8080", "routelabd address")
		scenarios = flag.String("scenarios", "", "comma-separated scenario ids (default: all registered)")
		clients   = flag.Int("clients", 8, "concurrent clients")
		requests  = flag.Int("requests", 200, "total request budget (ignored with -duration)")
		duration  = flag.Duration("duration", 0, "sustained mode: clients loop the schedule until this elapses")
		bucket    = flag.Duration("bucket", time.Second, "time-bucket width for the latency histogram (0 = no buckets)")
		spread    = flag.Int("spread", 0, "vary the experiments endpoint's seed over N distinct values (defeats response-cache coalescing; <=1 = off)")
		cold      = flag.String("cold", "", "comma-separated scenario ids to drive WITHOUT warmup (healthz only; the first touch triggers the build)")
		timeout   = flag.Duration("timeout", 5*time.Minute, "per-request client timeout")
		out       = flag.String("out", "LOAD_routelab.json", "write the routelab-load/v1 emission here (empty = skip)")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintf(os.Stderr, "routeload: unexpected arguments: %v\n", flag.Args())
		flag.Usage()
		os.Exit(2)
	}
	if *clients < 1 || (*duration <= 0 && *requests < 1) {
		fmt.Fprintln(os.Stderr, "routeload: -clients and -requests (or -duration) must be >= 1")
		os.Exit(2)
	}

	base := "http://" + *addr
	// Thousands of sustained clients must not churn sockets: size the
	// idle pool to the client count so every client keeps one warm
	// connection instead of racing the default (2 per host) and paying
	// a TCP handshake per request.
	transport := http.DefaultTransport.(*http.Transport).Clone()
	transport.MaxIdleConns = *clients
	transport.MaxIdleConnsPerHost = *clients
	client := &http.Client{Timeout: *timeout, Transport: transport}

	ids := splitIDs(*scenarios)
	if len(ids) == 0 {
		var err error
		ids, err = discoverScenarios(client, base)
		if err != nil {
			fmt.Fprintln(os.Stderr, "routeload:", err)
			os.Exit(1)
		}
	}
	if *duration > 0 {
		fmt.Fprintf(os.Stderr, "routeload: driving %d scenario(s) %v with %d sustained clients for %v\n",
			len(ids), ids, *clients, *duration)
	} else {
		fmt.Fprintf(os.Stderr, "routeload: driving %d scenario(s) %v with %d clients, %d requests\n",
			len(ids), ids, *clients, *requests)
	}

	// Warmup: build every scenario and discover per-scenario request
	// parameters before the clock starts.
	var urls []target
	for _, id := range ids {
		ts, err := warmup(client, base, id)
		if err != nil {
			fmt.Fprintf(os.Stderr, "routeload: warmup %s: %v\n", id, err)
			os.Exit(1)
		}
		urls = append(urls, ts...)
	}
	// Cold scenarios skip warmup on purpose: their first healthz IS the
	// load. Several cold ids touched concurrently pressure the build
	// gate — with a tight -max-queued-builds the overflow surfaces as
	// clean 429s, which is how the saturation smoke forces build
	// shedding through the public API. Builds run ~seconds while
	// requests arrive in milliseconds, so the pressure is machine-
	// independent (unlike request-gate contention, which needs computes
	// long enough to overlap).
	for _, id := range splitIDs(*cold) {
		ids = append(ids, id)
		urls = append(urls, target{scenario: id, endpoint: "healthz",
			url: base + "/v1/scenarios/" + id + "/healthz"})
	}

	var samples runResult
	if *duration > 0 {
		samples = runSustained(client, urls, *clients, *spread, *duration)
	} else {
		samples = run(client, urls, *clients, *spread, *requests)
	}

	rep := service.BuildLoadReport(
		"routeload "+strings.Join(os.Args[1:], " "),
		base, ids, *clients, samples.wallNS, int64(*bucket), samples.s)
	printSummary(rep)
	if *out != "" {
		if err := rep.WriteFile(*out); err != nil {
			fmt.Fprintln(os.Stderr, "routeload:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "routeload: emission written to %s\n", *out)
	}
}

func splitIDs(s string) []string {
	var out []string
	for _, id := range strings.Split(s, ",") {
		if id = strings.TrimSpace(id); id != "" {
			out = append(out, id)
		}
	}
	return out
}

// target is one schedulable request: which scenario it counts against
// and which endpoint family it exercises. A non-empty body makes the
// request a POST (the what-if leg); method defaults to GET.
type target struct {
	scenario string
	endpoint string
	url      string
	body     string
	// seeded marks a target whose URL accepts a ?seed= override (the
	// experiments endpoint). With -spread, at() rewrites the seed per
	// schedule position so concurrent requests stop sharing a cache key.
	seeded bool
}

// at materializes the target for schedule position j: with spread > 1
// a seeded target gets a position-derived seed, so the request mix
// stays deterministic (same j -> same URL) while defeating same-key
// coalescing in the server's response cache. Saturation legs need this:
// coalesced waiters deliberately never shed, so a fixed URL set can
// absorb any client count without ever pressuring the admission gate.
func (t target) at(j, spread int) target {
	if spread > 1 && t.seeded {
		t.url = fmt.Sprintf("%s?seed=%d", t.url, j%spread)
	}
	return t
}

// discoverScenarios asks the fleet for its registered ids.
func discoverScenarios(client *http.Client, base string) ([]string, error) {
	resp, err := client.Get(base + "/v1/scenarios")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /v1/scenarios: status %d (is routelabd running with -scenario-dir?)", resp.StatusCode)
	}
	env, err := service.ReadEnvelope(resp.Body)
	if err != nil {
		return nil, err
	}
	var data service.ScenariosData
	if err := unmarshalData(env, "scenarios", &data); err != nil {
		return nil, err
	}
	if len(data.Scenarios) == 0 {
		return nil, fmt.Errorf("fleet has no registered scenarios")
	}
	ids := make([]string, 0, len(data.Scenarios))
	for _, in := range data.Scenarios {
		ids = append(ids, in.ID)
	}
	return ids, nil
}

// warmup builds scenario id (first touch) and assembles its endpoint
// mix: a live trace id probed the way scripts/service_smoke.sh does,
// and an AS taken from that trace's first routing decision.
func warmup(client *http.Client, base, id string) ([]target, error) {
	prefix := base + "/v1/scenarios/" + id
	if _, _, err := fetch(client, prefix+"/healthz"); err != nil {
		return nil, err
	}
	var classifyURL string
	var classify service.ClassifyData
	for t := 0; t < 200; t++ {
		u := fmt.Sprintf("%s/classify?trace=%d", prefix, t)
		resp, err := client.Get(u)
		if err != nil {
			return nil, err
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			continue
		}
		env, err := service.ReadEnvelope(resp.Body)
		resp.Body.Close()
		if err != nil {
			return nil, err
		}
		if err := unmarshalData(env, "classify", &classify); err != nil {
			return nil, err
		}
		classifyURL = u
		break
	}
	if classifyURL == "" || len(classify.Decisions) == 0 {
		return nil, fmt.Errorf("no usable trace found in ids 0..199")
	}
	as := strings.TrimPrefix(classify.Decisions[0].At, "AS")
	// The what-if leg poisons the discovered AS: a POST body that is
	// valid on any scenario (the AS is live in this world by
	// construction) and deterministic per scenario.
	whatifDoc := fmt.Sprintf(`{"schema":%q,"deltas":[{"kind":"poison","poisoned":["AS%s"]},{"kind":"prepend","prepend":3},{"kind":"withdraw"}]}`,
		service.WhatIfSchema, as)
	return []target{
		{scenario: id, endpoint: "healthz", url: prefix + "/healthz"},
		{scenario: id, endpoint: "classify", url: classifyURL},
		{scenario: id, endpoint: "as", url: prefix + "/as/" + as},
		{scenario: id, endpoint: "alternates", url: prefix + "/alternates?target=" + as},
		// figure1 (the replication centerpiece) is also the schedule's
		// one heavyweight compute: saturation legs rely on it holding
		// the admission gate long enough for a real queue to form even
		// on single-core runners, where sub-millisecond computes never
		// overlap and the gate would otherwise always look idle.
		{scenario: id, endpoint: "experiments", url: prefix + "/experiments/figure1", seeded: true},
		{scenario: id, endpoint: "whatif", url: prefix + "/whatif", body: whatifDoc},
	}, nil
}

func unmarshalData(env service.Envelope, kind string, v any) error {
	if env.Kind != kind {
		return fmt.Errorf("envelope kind %q, want %q", env.Kind, kind)
	}
	return json.Unmarshal(env.Data, v)
}

// fetch issues one GET and validates the envelope; returns the status
// and the cache header.
func fetch(client *http.Client, url string) (status int, cacheHdr string, err error) {
	status, cacheHdr, _, err = do(client, target{url: url})
	return status, cacheHdr, err
}

// do issues one scheduled request — GET, or POST when the target
// carries a body — and validates the response envelope. shed reports a
// clean shed: status 429 whose envelope carries the "overloaded" code
// and whose response advertises Retry-After. A 429 without both is NOT
// a shed — it stays an error, so a server that refuses without telling
// clients when to come back fails the harness.
func do(client *http.Client, t target) (status int, cacheHdr string, shed bool, err error) {
	var resp *http.Response
	if t.body != "" {
		resp, err = client.Post(t.url, "application/json", strings.NewReader(t.body))
	} else {
		resp, err = client.Get(t.url)
	}
	if err != nil {
		return 0, "", false, err
	}
	defer resp.Body.Close()
	cacheHdr = resp.Header.Get(service.CacheHeader)
	env, err := service.ReadEnvelope(resp.Body)
	if err != nil {
		return resp.StatusCode, cacheHdr, false, fmt.Errorf("%s: %w", t.url, err)
	}
	if resp.StatusCode == http.StatusTooManyRequests {
		var ed service.ErrorData
		if jerr := json.Unmarshal(env.Data, &ed); jerr != nil {
			return resp.StatusCode, cacheHdr, false, fmt.Errorf("%s: 429 payload: %w", t.url, jerr)
		}
		if ed.Code != service.CodeOverloaded {
			return resp.StatusCode, cacheHdr, false, fmt.Errorf("%s: 429 with code %q, want %q", t.url, ed.Code, service.CodeOverloaded)
		}
		if resp.Header.Get("Retry-After") == "" {
			return resp.StatusCode, cacheHdr, false, fmt.Errorf("%s: 429 without Retry-After", t.url)
		}
		return resp.StatusCode, cacheHdr, true, nil
	}
	return resp.StatusCode, cacheHdr, false, nil
}

type runResult struct {
	s      []service.LoadSample
	wallNS int64
}

// sample issues one scheduled request and records its outcome relative
// to the run's start.
func sample(client *http.Client, t target, start time.Time) service.LoadSample {
	reqStart := time.Now()
	status, cacheHdr, shed, err := do(client, t)
	s := service.LoadSample{
		Scenario:  t.scenario,
		Endpoint:  t.endpoint,
		StartNS:   int64(reqStart.Sub(start)),
		LatencyNS: int64(time.Since(reqStart)),
		Status:    status,
		Cache:     cacheHdr,
		Failed:    err != nil || (status != http.StatusOK && !shed),
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "routeload: %v\n", err)
	} else if status != http.StatusOK && !shed {
		fmt.Fprintf(os.Stderr, "routeload: %s: status %d\n", t.url, status)
	}
	return s
}

// run executes the deterministic request-budget schedule: request j
// targets urls[j mod len(urls)], jobs are handed to clients in order,
// and each client's samples land in a per-request slot (no append
// races).
func run(client *http.Client, urls []target, clients, spread, requests int) runResult {
	samples := make([]service.LoadSample, requests)
	jobs := make(chan int)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				samples[j] = sample(client, urls[j%len(urls)].at(j, spread), start)
			}
		}()
	}
	for j := 0; j < requests; j++ {
		jobs <- j
	}
	close(jobs)
	wg.Wait()
	return runResult{s: samples, wallNS: int64(time.Since(start))}
}

// runSustained executes the sustained schedule: client c owns schedule
// positions c, c+N, c+2N, ... and loops until the deadline. Per-client
// sample slices are merged in client order afterwards, so the output
// order is deterministic given the same per-client stop points.
func runSustained(client *http.Client, urls []target, clients, spread int, d time.Duration) runResult {
	perClient := make([][]service.LoadSample, clients)
	var wg sync.WaitGroup
	start := time.Now()
	deadline := start.Add(d)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for j := c; time.Now().Before(deadline); j += clients {
				perClient[c] = append(perClient[c], sample(client, urls[j%len(urls)].at(j, spread), start))
			}
		}(c)
	}
	wg.Wait()
	// Wall is measured after the join: requests started before the
	// deadline may finish after it, and they belong to this run.
	wallNS := int64(time.Since(start))
	var all []service.LoadSample
	for _, ss := range perClient {
		all = append(all, ss...)
	}
	return runResult{s: all, wallNS: wallNS}
}

func printSummary(rep service.LoadReport) {
	ms := func(ns int64) float64 { return float64(ns) / 1e6 }
	fmt.Printf("%s: %d requests, %d clients, %d scenario(s), %.1fs wall\n",
		rep.Schema, rep.Requests, rep.Clients, len(rep.Scenarios), float64(rep.WallNS)/1e9)
	fmt.Printf("throughput %.1f req/s, errors %d (%.2f%%), sheds %d (%.2f%%), cache hit rate %.1f%% (%d/%d counted)\n",
		rep.Throughput, rep.Errors, rep.ErrorRate*100, rep.Sheds, rep.ShedRate*100,
		rep.CacheHitRate*100, rep.CacheHits, rep.CacheHits+rep.CacheMisses)
	fmt.Printf("latency p50 %.1fms p90 %.1fms p99 %.1fms max %.1fms\n",
		ms(rep.Latency.P50NS), ms(rep.Latency.P90NS), ms(rep.Latency.P99NS), ms(rep.Latency.MaxNS))
	w := tabwriter.NewWriter(os.Stdout, 2, 8, 2, ' ', 0)
	fmt.Fprintln(w, "endpoint\trequests\terrors\tsheds\tp50 ms\tp99 ms")
	for _, ep := range rep.Endpoints {
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%.1f\t%.1f\n",
			ep.Endpoint, ep.Requests, ep.Errors, ep.Sheds, ms(ep.Latency.P50NS), ms(ep.Latency.P99NS))
	}
	w.Flush()
	for _, sc := range rep.PerScenario {
		fmt.Printf("scenario %s: %d requests, %d errors, %d sheds\n", sc.Scenario, sc.Requests, sc.Errors, sc.Sheds)
	}
	if len(rep.Buckets) > 0 {
		fmt.Printf("histogram: %d buckets of %v\n", len(rep.Buckets), time.Duration(rep.BucketNS))
		bw := tabwriter.NewWriter(os.Stdout, 2, 8, 2, ' ', 0)
		fmt.Fprintln(bw, "t\trequests\terrors\tsheds\tp50 ms\tp99 ms")
		for _, b := range rep.Buckets {
			fmt.Fprintf(bw, "%v\t%d\t%d\t%d\t%.1f\t%.1f\n",
				time.Duration(b.StartNS), b.Requests, b.Errors, b.Sheds,
				ms(b.Latency.P50NS), ms(b.Latency.P99NS))
		}
		bw.Flush()
	}
}
