// Command routeload drives a running routelabd fleet with N concurrent
// clients over a mixed scenario/endpoint schedule and emits a
// routelab-load/v1 report (throughput, p50/p90/p99 latency, error and
// cache-hit rates, per-endpoint and per-scenario breakdowns) that
// cmd/loadcheck validates and gates on — the serve-time counterpart of
// the bench harness + cmd/benchcheck pair.
//
// Usage:
//
//	routeload [flags]
//
// Flags:
//
//	-addr ADDR       routelabd address (default localhost:8080)
//	-scenarios A,B   scenario ids to drive (default: every id the fleet
//	                 lists — beware, that builds every registered world)
//	-clients N       concurrent clients (default 8)
//	-requests N      total request budget across all clients (default 200)
//	-timeout D       per-request client timeout (default 5m; first
//	                 requests wait on scenario builds)
//	-out PATH        write the routelab-load/v1 emission here
//	                 (default LOAD_routelab.json; "" skips the file)
//
// The schedule is deterministic: request j targets scenario j mod S and
// walks the endpoint mix in order, so two runs against the same fleet
// issue the same requests in the same per-client order. Every response
// body is validated against routelab-api/v1; a transport error, an
// unexpected status, or an invalid envelope counts as an error in the
// report (and loadcheck fails CI on any).
//
// Warmup (one healthz per scenario to trigger the build, plus probe
// requests to discover a live trace id and AS) happens before the
// clock starts; the report measures steady-state serving only.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"
	"sync"
	"text/tabwriter"
	"time"

	"routelab/internal/service"
)

func main() {
	var (
		addr      = flag.String("addr", "localhost:8080", "routelabd address")
		scenarios = flag.String("scenarios", "", "comma-separated scenario ids (default: all registered)")
		clients   = flag.Int("clients", 8, "concurrent clients")
		requests  = flag.Int("requests", 200, "total request budget")
		timeout   = flag.Duration("timeout", 5*time.Minute, "per-request client timeout")
		out       = flag.String("out", "LOAD_routelab.json", "write the routelab-load/v1 emission here (empty = skip)")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintf(os.Stderr, "routeload: unexpected arguments: %v\n", flag.Args())
		flag.Usage()
		os.Exit(2)
	}
	if *clients < 1 || *requests < 1 {
		fmt.Fprintln(os.Stderr, "routeload: -clients and -requests must be >= 1")
		os.Exit(2)
	}

	base := "http://" + *addr
	client := &http.Client{Timeout: *timeout}

	ids := splitIDs(*scenarios)
	if len(ids) == 0 {
		var err error
		ids, err = discoverScenarios(client, base)
		if err != nil {
			fmt.Fprintln(os.Stderr, "routeload:", err)
			os.Exit(1)
		}
	}
	fmt.Fprintf(os.Stderr, "routeload: driving %d scenario(s) %v with %d clients, %d requests\n",
		len(ids), ids, *clients, *requests)

	// Warmup: build every scenario and discover per-scenario request
	// parameters before the clock starts.
	var urls []target
	for _, id := range ids {
		ts, err := warmup(client, base, id)
		if err != nil {
			fmt.Fprintf(os.Stderr, "routeload: warmup %s: %v\n", id, err)
			os.Exit(1)
		}
		urls = append(urls, ts...)
	}

	samples := run(client, urls, ids, *clients, *requests)

	rep := service.BuildLoadReport(
		"routeload "+strings.Join(os.Args[1:], " "),
		base, ids, *clients, samples.wallNS, samples.s)
	printSummary(rep)
	if *out != "" {
		if err := rep.WriteFile(*out); err != nil {
			fmt.Fprintln(os.Stderr, "routeload:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "routeload: emission written to %s\n", *out)
	}
}

func splitIDs(s string) []string {
	var out []string
	for _, id := range strings.Split(s, ",") {
		if id = strings.TrimSpace(id); id != "" {
			out = append(out, id)
		}
	}
	return out
}

// target is one schedulable request: which scenario it counts against
// and which endpoint family it exercises. A non-empty body makes the
// request a POST (the what-if leg); method defaults to GET.
type target struct {
	scenario string
	endpoint string
	url      string
	body     string
}

// discoverScenarios asks the fleet for its registered ids.
func discoverScenarios(client *http.Client, base string) ([]string, error) {
	resp, err := client.Get(base + "/v1/scenarios")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /v1/scenarios: status %d (is routelabd running with -scenario-dir?)", resp.StatusCode)
	}
	env, err := service.ReadEnvelope(resp.Body)
	if err != nil {
		return nil, err
	}
	var data service.ScenariosData
	if err := unmarshalData(env, "scenarios", &data); err != nil {
		return nil, err
	}
	if len(data.Scenarios) == 0 {
		return nil, fmt.Errorf("fleet has no registered scenarios")
	}
	ids := make([]string, 0, len(data.Scenarios))
	for _, in := range data.Scenarios {
		ids = append(ids, in.ID)
	}
	return ids, nil
}

// warmup builds scenario id (first touch) and assembles its endpoint
// mix: a live trace id probed the way scripts/service_smoke.sh does,
// and an AS taken from that trace's first routing decision.
func warmup(client *http.Client, base, id string) ([]target, error) {
	prefix := base + "/v1/scenarios/" + id
	if _, _, err := fetch(client, prefix+"/healthz"); err != nil {
		return nil, err
	}
	var classifyURL string
	var classify service.ClassifyData
	for t := 0; t < 200; t++ {
		u := fmt.Sprintf("%s/classify?trace=%d", prefix, t)
		resp, err := client.Get(u)
		if err != nil {
			return nil, err
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			continue
		}
		env, err := service.ReadEnvelope(resp.Body)
		resp.Body.Close()
		if err != nil {
			return nil, err
		}
		if err := unmarshalData(env, "classify", &classify); err != nil {
			return nil, err
		}
		classifyURL = u
		break
	}
	if classifyURL == "" || len(classify.Decisions) == 0 {
		return nil, fmt.Errorf("no usable trace found in ids 0..199")
	}
	as := strings.TrimPrefix(classify.Decisions[0].At, "AS")
	// The what-if leg poisons the discovered AS: a POST body that is
	// valid on any scenario (the AS is live in this world by
	// construction) and deterministic per scenario.
	whatifDoc := fmt.Sprintf(`{"schema":%q,"deltas":[{"kind":"poison","poisoned":["AS%s"]},{"kind":"prepend","prepend":3},{"kind":"withdraw"}]}`,
		service.WhatIfSchema, as)
	return []target{
		{scenario: id, endpoint: "healthz", url: prefix + "/healthz"},
		{scenario: id, endpoint: "classify", url: classifyURL},
		{scenario: id, endpoint: "as", url: prefix + "/as/" + as},
		{scenario: id, endpoint: "alternates", url: prefix + "/alternates?target=" + as},
		{scenario: id, endpoint: "experiments", url: prefix + "/experiments/table1"},
		{scenario: id, endpoint: "whatif", url: prefix + "/whatif", body: whatifDoc},
	}, nil
}

func unmarshalData(env service.Envelope, kind string, v any) error {
	if env.Kind != kind {
		return fmt.Errorf("envelope kind %q, want %q", env.Kind, kind)
	}
	return json.Unmarshal(env.Data, v)
}

// fetch issues one GET and validates the envelope; returns the status
// and the cache header.
func fetch(client *http.Client, url string) (status int, cacheHdr string, err error) {
	return do(client, target{url: url})
}

// do issues one scheduled request — GET, or POST when the target
// carries a body — and validates the response envelope.
func do(client *http.Client, t target) (status int, cacheHdr string, err error) {
	var resp *http.Response
	if t.body != "" {
		resp, err = client.Post(t.url, "application/json", strings.NewReader(t.body))
	} else {
		resp, err = client.Get(t.url)
	}
	if err != nil {
		return 0, "", err
	}
	defer resp.Body.Close()
	cacheHdr = resp.Header.Get(service.CacheHeader)
	if _, err := service.ReadEnvelope(resp.Body); err != nil {
		return resp.StatusCode, cacheHdr, fmt.Errorf("%s: %w", t.url, err)
	}
	return resp.StatusCode, cacheHdr, nil
}

type runResult struct {
	s      []service.LoadSample
	wallNS int64
}

// run executes the deterministic schedule: request j targets
// urls[j mod len(urls)], jobs are handed to clients in order, and each
// client's samples land in a per-request slot (no append races).
func run(client *http.Client, urls []target, ids []string, clients, requests int) runResult {
	samples := make([]service.LoadSample, requests)
	jobs := make(chan int)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				t := urls[j%len(urls)]
				reqStart := time.Now()
				status, cacheHdr, err := do(client, t)
				samples[j] = service.LoadSample{
					Scenario:  t.scenario,
					Endpoint:  t.endpoint,
					LatencyNS: int64(time.Since(reqStart)),
					Status:    status,
					Cache:     cacheHdr,
					Failed:    err != nil || status != http.StatusOK,
				}
				if err != nil {
					fmt.Fprintf(os.Stderr, "routeload: %v\n", err)
				} else if status != http.StatusOK {
					fmt.Fprintf(os.Stderr, "routeload: %s: status %d\n", t.url, status)
				}
			}
		}()
	}
	for j := 0; j < requests; j++ {
		jobs <- j
	}
	close(jobs)
	wg.Wait()
	return runResult{s: samples, wallNS: int64(time.Since(start))}
}

func printSummary(rep service.LoadReport) {
	ms := func(ns int64) float64 { return float64(ns) / 1e6 }
	fmt.Printf("%s: %d requests, %d clients, %d scenario(s), %.1fs wall\n",
		rep.Schema, rep.Requests, rep.Clients, len(rep.Scenarios), float64(rep.WallNS)/1e9)
	fmt.Printf("throughput %.1f req/s, errors %d (%.2f%%), cache hit rate %.1f%% (%d/%d counted)\n",
		rep.Throughput, rep.Errors, rep.ErrorRate*100,
		rep.CacheHitRate*100, rep.CacheHits, rep.CacheHits+rep.CacheMisses)
	fmt.Printf("latency p50 %.1fms p90 %.1fms p99 %.1fms max %.1fms\n",
		ms(rep.Latency.P50NS), ms(rep.Latency.P90NS), ms(rep.Latency.P99NS), ms(rep.Latency.MaxNS))
	w := tabwriter.NewWriter(os.Stdout, 2, 8, 2, ' ', 0)
	fmt.Fprintln(w, "endpoint\trequests\terrors\tp50 ms\tp99 ms")
	for _, ep := range rep.Endpoints {
		fmt.Fprintf(w, "%s\t%d\t%d\t%.1f\t%.1f\n",
			ep.Endpoint, ep.Requests, ep.Errors, ms(ep.Latency.P50NS), ms(ep.Latency.P99NS))
	}
	w.Flush()
	for _, sc := range rep.PerScenario {
		fmt.Printf("scenario %s: %d requests, %d errors\n", sc.Scenario, sc.Requests, sc.Errors)
	}
}
