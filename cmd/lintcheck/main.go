// Command lintcheck validates a routelint JSON emission (schema
// routelab-lint/v1, written by `routelint -format=json`) and prints a
// human-readable summary — the benchcheck/apicheck validator pattern
// applied to the static-analysis report. It exits non-zero on a
// missing, unparseable, or malformed file, which is how CI's routelint
// job fails on a broken emission.
//
// Beyond schema validity it also gates on rule count: -min-rules
// (default: the size of the registry this binary was built against)
// rejects a report produced by a narrowed `-rules` run or by a build
// where an analyzer was deleted, so CI cannot silently lose coverage.
//
// Usage:
//
//	lintcheck [-min-rules N] [path]    (default LINT_routelab.json)
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"routelab/internal/lint"
)

func main() {
	minRules := flag.Int("min-rules", len(lint.Analyzers()),
		"fail unless the report covers at least this many rules")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: lintcheck [-min-rules N] [path to LINT_routelab.json]")
		flag.PrintDefaults()
	}
	flag.Parse()
	path := "LINT_routelab.json"
	switch flag.NArg() {
	case 0:
	case 1:
		path = flag.Arg(0)
	default:
		flag.Usage()
		os.Exit(2)
	}

	rep, err := lint.ReadReport(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lintcheck:", err)
		os.Exit(1)
	}
	if len(rep.Analyzers) < *minRules {
		fmt.Fprintf(os.Stderr, "lintcheck: %s: rule coverage regressed: report has %d analyzer(s), want >= %d (was it produced by a -rules subset, or was an analyzer deleted?)\n",
			path, len(rep.Analyzers), *minRules)
		os.Exit(1)
	}

	fmt.Printf("%s: valid %s emission (module %s, %s, %d packages)\n",
		path, rep.Schema, rep.Module, rep.GoVersion, rep.Packages)
	w := tabwriter.NewWriter(os.Stdout, 2, 8, 2, ' ', 0)
	fmt.Fprintln(w, "rule\tinvariant")
	for _, a := range rep.Analyzers {
		fmt.Fprintf(w, "%s\t%s\n", a.Name, a.Doc)
	}
	w.Flush()
	if rep.Clean {
		fmt.Printf("%d analyzers, clean tree\n", len(rep.Analyzers))
		return
	}
	fmt.Printf("%d analyzers, %d finding(s):\n", len(rep.Analyzers), len(rep.Findings))
	for _, f := range rep.Findings {
		fmt.Printf("  %s:%d:%d: [%s] %s\n", f.File, f.Line, f.Col, f.Rule, f.Message)
	}
}
