// Command lintcheck validates a routelint JSON emission (schema
// routelab-lint/v1, written by `routelint -format=json`) and prints a
// human-readable summary — the benchcheck/apicheck validator pattern
// applied to the static-analysis report. It exits non-zero on a
// missing, unparseable, or malformed file, which is how CI's routelint
// job fails on a broken emission.
//
// Usage:
//
//	lintcheck [path]    (default LINT_routelab.json)
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"routelab/internal/lint"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: lintcheck [path to LINT_routelab.json]")
		flag.PrintDefaults()
	}
	flag.Parse()
	path := "LINT_routelab.json"
	switch flag.NArg() {
	case 0:
	case 1:
		path = flag.Arg(0)
	default:
		flag.Usage()
		os.Exit(2)
	}

	rep, err := lint.ReadReport(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lintcheck:", err)
		os.Exit(1)
	}

	fmt.Printf("%s: valid %s emission (module %s, %s, %d packages)\n",
		path, rep.Schema, rep.Module, rep.GoVersion, rep.Packages)
	w := tabwriter.NewWriter(os.Stdout, 2, 8, 2, ' ', 0)
	fmt.Fprintln(w, "rule\tinvariant")
	for _, a := range rep.Analyzers {
		fmt.Fprintf(w, "%s\t%s\n", a.Name, a.Doc)
	}
	w.Flush()
	if rep.Clean {
		fmt.Printf("%d analyzers, clean tree\n", len(rep.Analyzers))
		return
	}
	fmt.Printf("%d analyzers, %d finding(s):\n", len(rep.Analyzers), len(rep.Findings))
	for _, f := range rep.Findings {
		fmt.Printf("  %s:%d:%d: [%s] %s\n", f.File, f.Line, f.Col, f.Rule, f.Message)
	}
}
