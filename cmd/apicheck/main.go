// Command apicheck validates routelab-api/v1 response envelopes, the
// way cmd/benchcheck validates bench reports: read JSON from files (or
// stdin with no arguments), check the schema tag, the kind, and the
// payload, and exit non-zero with a message on the first violation.
//
// Usage:
//
//	apicheck [file...]
//	curl -s localhost:8080/v1/healthz | apicheck
//
// The CI service-smoke job pipes every /v1 endpoint's body through it.
package main

import (
	"fmt"
	"io"
	"os"

	"routelab/internal/service"
)

func check(name string, r io.Reader) error {
	e, err := service.ReadEnvelope(r)
	if err != nil {
		return fmt.Errorf("%s: %v", name, err)
	}
	fmt.Printf("%s: ok (%s, kind %s, %d data bytes)\n", name, e.Schema, e.Kind, len(e.Data))
	return nil
}

func main() {
	if len(os.Args) < 2 {
		if err := check("stdin", os.Stdin); err != nil {
			fmt.Fprintln(os.Stderr, "apicheck:", err)
			os.Exit(1)
		}
		return
	}
	for _, path := range os.Args[1:] {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "apicheck:", err)
			os.Exit(1)
		}
		err = check(path, f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "apicheck:", err)
			os.Exit(1)
		}
	}
}
