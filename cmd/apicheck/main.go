// Command apicheck validates routelab-api/v1 response envelopes, the
// way cmd/benchcheck validates bench reports: read JSON from files (or
// stdin with no arguments), check the schema tag, the kind, and the
// payload, and exit non-zero with a message on the first violation.
//
// A document tagged routelab-whatif/v1 is checked as a what-if REQUEST
// instead (the delta-XOR-deltas contract, known kinds, the batch cap),
// so CI can lint both directions of the POST /v1/whatif exchange. A
// response envelope of kind "whatif" additionally has its payload's
// internal consistency verified (result counts, diff arithmetic), and
// kind "build" (the build-progress endpoint) has its state machine
// checked (state enum, percent/phase agreement).
//
// Usage:
//
//	apicheck [file...]
//	curl -s localhost:8080/v1/healthz | apicheck
//
// The CI service-smoke job pipes every /v1 endpoint's body through it.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"routelab/internal/service"
)

func check(name string, r io.Reader) error {
	raw, err := io.ReadAll(r)
	if err != nil {
		return fmt.Errorf("%s: %v", name, err)
	}
	var probe struct {
		Schema string `json:"schema"`
	}
	if err := json.Unmarshal(raw, &probe); err != nil {
		return fmt.Errorf("%s: %v", name, err)
	}
	if probe.Schema == service.WhatIfSchema {
		return checkWhatIfRequest(name, raw)
	}
	var e service.Envelope
	if err := json.Unmarshal(raw, &e); err != nil {
		return fmt.Errorf("%s: %v", name, err)
	}
	if err := e.Validate(); err != nil {
		return fmt.Errorf("%s: %v", name, err)
	}
	switch e.Kind {
	case "whatif":
		var data service.WhatIfData
		if err := json.Unmarshal(e.Data, &data); err != nil {
			return fmt.Errorf("%s: whatif data: %v", name, err)
		}
		if err := data.Validate(); err != nil {
			return fmt.Errorf("%s: whatif data: %v", name, err)
		}
	case "build":
		var data service.BuildProgressData
		if err := json.Unmarshal(e.Data, &data); err != nil {
			return fmt.Errorf("%s: build data: %v", name, err)
		}
		if err := data.Validate(); err != nil {
			return fmt.Errorf("%s: build data: %v", name, err)
		}
	}
	fmt.Printf("%s: ok (%s, kind %s, %d data bytes)\n", name, e.Schema, e.Kind, len(e.Data))
	return nil
}

func checkWhatIfRequest(name string, raw []byte) error {
	var req service.WhatIfRequest
	if err := json.Unmarshal(raw, &req); err != nil {
		return fmt.Errorf("%s: %v", name, err)
	}
	if err := req.Validate(); err != nil {
		return fmt.Errorf("%s: %v", name, err)
	}
	fmt.Printf("%s: ok (%s request, %d deltas)\n", name, service.WhatIfSchema, len(req.All()))
	return nil
}

func main() {
	if len(os.Args) < 2 {
		if err := check("stdin", os.Stdin); err != nil {
			fmt.Fprintln(os.Stderr, "apicheck:", err)
			os.Exit(1)
		}
		return
	}
	for _, path := range os.Args[1:] {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "apicheck:", err)
			os.Exit(1)
		}
		err = check(path, f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "apicheck:", err)
			os.Exit(1)
		}
	}
}
