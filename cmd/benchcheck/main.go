// Command benchcheck validates a BENCH_routelab.json benchmark
// emission (schema routelab-bench/v1, written by the repository's
// bench harness — see bench_test.go and internal/obs) and prints a
// human-readable summary. It exits non-zero on a missing, unparseable,
// or malformed file, which is how CI's bench-smoke job fails on a
// broken emission.
//
// Usage:
//
//	benchcheck [path]    (default BENCH_routelab.json)
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"routelab/internal/obs"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: benchcheck [path to BENCH_routelab.json]")
		flag.PrintDefaults()
	}
	flag.Parse()
	path := "BENCH_routelab.json"
	switch flag.NArg() {
	case 0:
	case 1:
		path = flag.Arg(0)
	default:
		flag.Usage()
		os.Exit(2)
	}

	rep, err := obs.ReadBenchReport(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcheck:", err)
		os.Exit(1)
	}

	fmt.Printf("%s: valid %s emission (%s %s/%s, GOMAXPROCS %d)\n",
		path, rep.Schema, rep.GoVersion, rep.GOOS, rep.GOARCH, rep.GOMAXPROCS)
	w := tabwriter.NewWriter(os.Stdout, 2, 8, 2, ' ', 0)
	fmt.Fprintln(w, "benchmark\tn\tns/op\tallocs/op\tB/op")
	for _, b := range rep.Benchmarks {
		fmt.Fprintf(w, "%s\t%d\t%.0f\t%.1f\t%.0f\n",
			b.Name, b.N, b.NsPerOp, b.AllocsPerOp, b.BytesPerOp)
	}
	w.Flush()
	fmt.Printf("%d benchmarks, %d counters, %d stage timers\n",
		len(rep.Benchmarks), len(rep.Metrics.Counters), len(rep.Metrics.Stages))
}
