// Command benchcheck validates a BENCH_routelab.json benchmark
// emission (schema routelab-bench/v1, written by the repository's
// bench harness — see bench_test.go and internal/obs) and prints a
// human-readable summary. It exits non-zero on a missing, unparseable,
// or malformed file, which is how CI's bench-smoke job fails on a
// broken emission.
//
// With -baseline it additionally compares the emission against a
// committed baseline emission and fails on a regression in the
// convergence-engine benchmark set (the memory-compaction surface of
// DESIGN.md §12). The two metrics get different thresholds on purpose:
// allocs/op is deterministic and machine-independent, so it gates
// tightly (-max-regress, default 15%); ns/op from a one-iteration
// sweep jitters ~4x run-to-run and the committed baseline was recorded
// on a different machine than CI, so it gates only on catastrophic
// slowdowns (-max-ns-regress, default 400% — the accidental-O(n²)
// tripwire, not a latency SLO). Improvements and new benchmarks never
// fail; a convergence benchmark that DISAPPEARS from the fresh emission
// does, so the guard cannot be dodged by deleting the benchmark.
//
// Usage:
//
//	benchcheck [flags] [path]    (default BENCH_routelab.json)
//	  -baseline file       committed emission to compare against
//	  -max-regress pct     allowed allocs/op regression (default 15)
//	  -max-ns-regress pct  allowed ns/op regression (default 400)
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"routelab/internal/obs"
)

// convergenceSet lists the benchmarks the -baseline comparison gates:
// the convergence-engine hot paths whose allocation profile ISSUE 5
// compacted. Kept deliberately small — macro benchmarks (scenario
// builds, experiment tables) are too environment-sensitive to gate on.
var convergenceSet = []string{
	"BenchmarkConvergePrefix",
	"BenchmarkPoisonReconverge",
	"BenchmarkForkReconverge",
	"BenchmarkAlternateRoutes",
	"BenchmarkWhatIfDelta",
	"BenchmarkWhatIfRebuild",
}

// whatIfDelta/whatIfRebuild are the benchmark pair whose ns/op ratio is
// the incremental what-if engine's speedup over a from-scratch rebuild.
// Unlike the cross-machine baseline comparison, the ratio comes from ONE
// emission (same machine, same run), so it gates tightly.
const (
	whatIfDelta   = "BenchmarkWhatIfDelta"
	whatIfRebuild = "BenchmarkWhatIfRebuild"
)

func main() {
	baseline := flag.String("baseline", "", "committed BENCH emission to compare the fresh one against")
	maxRegress := flag.Float64("max-regress", 15, "allowed allocs/op regression, in percent")
	maxNsRegress := flag.Float64("max-ns-regress", 400, "allowed ns/op regression, in percent (lax: one-iteration cross-machine timings only catch blowups)")
	minWhatIfSpeedup := flag.Float64("min-whatif-speedup", 2.0, "required BenchmarkWhatIfRebuild/BenchmarkWhatIfDelta ns/op ratio (0 disables; same-run, so gated tightly)")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: benchcheck [-baseline file] [-max-regress pct] [-max-ns-regress pct] [-min-whatif-speedup ratio] [path to BENCH_routelab.json]")
		flag.PrintDefaults()
	}
	flag.Parse()
	path := "BENCH_routelab.json"
	switch flag.NArg() {
	case 0:
	case 1:
		path = flag.Arg(0)
	default:
		flag.Usage()
		os.Exit(2)
	}

	rep, err := obs.ReadBenchReport(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcheck:", err)
		os.Exit(1)
	}

	fmt.Printf("%s: valid %s emission (%s %s/%s, GOMAXPROCS %d)\n",
		path, rep.Schema, rep.GoVersion, rep.GOOS, rep.GOARCH, rep.GOMAXPROCS)
	w := tabwriter.NewWriter(os.Stdout, 2, 8, 2, ' ', 0)
	fmt.Fprintln(w, "benchmark\tn\tns/op\tallocs/op\tB/op")
	for _, b := range rep.Benchmarks {
		fmt.Fprintf(w, "%s\t%d\t%.0f\t%.1f\t%.0f\n",
			b.Name, b.N, b.NsPerOp, b.AllocsPerOp, b.BytesPerOp)
	}
	w.Flush()
	fmt.Printf("%d benchmarks, %d counters, %d stage timers\n",
		len(rep.Benchmarks), len(rep.Metrics.Counters), len(rep.Metrics.Stages))

	if !checkWhatIfSpeedup(rep, *minWhatIfSpeedup) {
		os.Exit(1)
	}

	if *baseline == "" {
		return
	}
	base, err := obs.ReadBenchReport(*baseline)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcheck: baseline:", err)
		os.Exit(1)
	}
	if !compare(rep, base, *maxRegress, *maxNsRegress) {
		os.Exit(1)
	}
}

// checkWhatIfSpeedup gates the what-if pair's within-emission speedup:
// the incremental delta evaluation must beat the from-scratch rebuild
// by at least min. An emission carrying only one of the pair fails (the
// gate cannot be dodged by dropping a benchmark); one carrying neither
// passes (partial sweeps, e.g. -bench filters, stay usable).
func checkWhatIfSpeedup(rep obs.BenchReport, min float64) bool {
	if min <= 0 {
		return true
	}
	var delta, rebuild *obs.BenchResult
	for i, b := range rep.Benchmarks {
		switch b.Name {
		case whatIfDelta:
			delta = &rep.Benchmarks[i]
		case whatIfRebuild:
			rebuild = &rep.Benchmarks[i]
		}
	}
	switch {
	case delta == nil && rebuild == nil:
		return true
	case delta == nil || rebuild == nil:
		fmt.Fprintf(os.Stderr, "whatif speedup: emission has only one of %s/%s\n", whatIfDelta, whatIfRebuild)
		return false
	case delta.NsPerOp <= 0:
		fmt.Fprintf(os.Stderr, "whatif speedup: %s ns/op %.0f is not positive\n", whatIfDelta, delta.NsPerOp)
		return false
	}
	ratio := rebuild.NsPerOp / delta.NsPerOp
	if ratio < min {
		fmt.Fprintf(os.Stderr, "whatif speedup: %.2fx (rebuild %.0f / delta %.0f ns/op) BELOW the %.1fx floor\n",
			ratio, rebuild.NsPerOp, delta.NsPerOp, min)
		return false
	}
	fmt.Printf("whatif speedup: %.1fx (rebuild %.0f / delta %.0f ns/op, floor %.1fx)\n",
		ratio, rebuild.NsPerOp, delta.NsPerOp, min)
	return true
}

// compare checks the convergence set of fresh against base and reports
// whether everything is within the allowed regression. All verdicts are
// printed (not just the first failure) so a regressing PR sees the full
// picture in one CI run.
func compare(fresh, base obs.BenchReport, maxRegressPct, maxNsRegressPct float64) bool {
	byName := func(rep obs.BenchReport) map[string]obs.BenchResult {
		m := make(map[string]obs.BenchResult, len(rep.Benchmarks))
		for _, b := range rep.Benchmarks {
			m[b.Name] = b
		}
		return m
	}
	fm, bm := byName(fresh), byName(base)
	allocLimit := 1 + maxRegressPct/100
	nsLimit := 1 + maxNsRegressPct/100
	ok := true
	for _, name := range convergenceSet {
		b, inBase := bm[name]
		f, inFresh := fm[name]
		switch {
		case !inBase:
			fmt.Printf("compare %s: not in baseline (new benchmark; commit a refreshed baseline)\n", name)
		case !inFresh:
			fmt.Fprintf(os.Stderr, "compare %s: MISSING from fresh emission\n", name)
			ok = false
		default:
			ok = compareMetric(name, "ns/op", f.NsPerOp, b.NsPerOp, nsLimit) && ok
			ok = compareMetric(name, "allocs/op", f.AllocsPerOp, b.AllocsPerOp, allocLimit) && ok
		}
	}
	if ok {
		fmt.Printf("compare: convergence set within limits (allocs/op +%.0f%%, ns/op +%.0f%%)\n",
			maxRegressPct, maxNsRegressPct)
	}
	return ok
}

func compareMetric(name, metric string, fresh, base, limit float64) bool {
	if base <= 0 { // nothing meaningful to regress against
		return true
	}
	ratio := fresh / base
	if ratio > limit {
		fmt.Fprintf(os.Stderr, "compare %s: %s REGRESSED %.0f -> %.0f (%+.1f%%, limit %+.1f%%)\n",
			name, metric, base, fresh, (ratio-1)*100, (limit-1)*100)
		return false
	}
	fmt.Printf("compare %s: %s %.0f -> %.0f (%+.1f%%)\n",
		name, metric, base, fresh, (ratio-1)*100)
	return true
}
