// Command mrtdump inspects a routelab MRT feed snapshot: summary
// statistics, per-peer entry counts, and (with -rels) a relationship
// graph inferred from the snapshot written out in CAIDA serial-1
// format — the whole offline inference pipeline as a shell command:
//
//	topogen -feed feed.mrt
//	mrtdump -rels inferred.txt feed.mrt
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"routelab/internal/asn"
	"routelab/internal/inference"
	"routelab/internal/mrt"
	"routelab/internal/serial"
)

func main() {
	relsPath := flag.String("rels", "", "infer relationships and write serial-1 here")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: mrtdump [-rels FILE] <snapshot.mrt>")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	snap, err := mrt.Read(f)
	if err != nil {
		fatal(err)
	}

	perPeer := map[asn.ASN]int{}
	prefixes := map[asn.Prefix]bool{}
	maxLen := 0
	for i := range snap.Entries {
		e := &snap.Entries[i]
		perPeer[e.Peer]++
		prefixes[e.Prefix] = true
		if len(e.Path) > maxLen {
			maxLen = len(e.Path)
		}
	}
	fmt.Printf("epoch %d: %d entries, %d peers, %d prefixes, longest path %d\n",
		snap.Epoch, len(snap.Entries), len(perPeer), len(prefixes), maxLen)
	peers := make([]asn.ASN, 0, len(perPeer))
	for p := range perPeer {
		peers = append(peers, p)
	}
	sort.Slice(peers, func(i, j int) bool { return peers[i] < peers[j] })
	for _, p := range peers {
		fmt.Printf("  %-8s %d entries\n", p, perPeer[p])
	}

	if *relsPath != "" {
		g := inference.InferSnapshot(snap, inference.DefaultConfig())
		out, err := os.Create(*relsPath)
		if err != nil {
			fatal(err)
		}
		if err := serial.Write(out, g); err != nil {
			fatal(err)
		}
		if err := out.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("inferred %d relationships -> %s\n", g.NumEdges(), *relsPath)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mrtdump:", err)
	os.Exit(1)
}
