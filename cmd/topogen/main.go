// Command topogen generates a synthetic ground-truth Internet and
// exports it in analysis-ready forms: a summary to stderr, the true
// AS-relationship graph in CAIDA serial-1 format, and (optionally) a
// monitor feed snapshot in routelab's MRT framing.
//
// Usage:
//
//	topogen [-seed N] [-scale F] [-rels FILE] [-feed FILE] [-peers N] [-workers N]
//
// The serial file can be diffed against an inferred graph; the feed
// file is what cmd/mrtdump inspects and what inference consumes.
// -workers bounds the per-prefix convergence pool behind -feed
// (0 = all cores, 1 = serial); the snapshot is byte-identical either way.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"routelab/internal/bgp"
	"routelab/internal/mrt"
	"routelab/internal/relgraph"
	"routelab/internal/serial"
	"routelab/internal/topology"
	"routelab/internal/vantage"
)

func main() {
	var (
		seed     = flag.Int64("seed", 2015, "generator seed")
		scale    = flag.Float64("scale", 0.15, "topology scale factor")
		relsPath = flag.String("rels", "", "write ground-truth relationships (serial-1) here")
		feedPath = flag.String("feed", "", "converge routing and write a monitor snapshot (MRT) here")
		peers    = flag.Int("peers", 30, "feed peers for -feed")
		workers  = flag.Int("workers", 0, "parallel routing workers for -feed (0 = all cores, 1 = serial)")
	)
	flag.Parse()

	cfg := topology.DefaultConfig()
	cfg.Scale = *scale
	topo := topology.Generate(*seed, cfg)
	counts := map[topology.Class]int{}
	for _, a := range topo.ASNs() {
		counts[topo.AS(a).Class]++
	}
	fmt.Fprintf(os.Stderr, "generated %d ASes, %d links, %d prefixes, %d retired links\n",
		topo.NumASes(), topo.NumLinks(), len(topo.OriginatedPrefixes()), len(topo.RetiredLinks))
	for _, cls := range []topology.Class{topology.Tier1, topology.LargeISP, topology.SmallISP,
		topology.Stub, topology.Content, topology.CableOp, topology.Research} {
		fmt.Fprintf(os.Stderr, "  %-10s %d\n", cls, counts[cls])
	}

	if *relsPath != "" {
		f, err := os.Create(*relsPath)
		if err != nil {
			fatal(err)
		}
		if err := serial.Write(f, relgraph.FromTopology(topo)); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote relationships to %s\n", *relsPath)
	}

	if *feedPath != "" {
		fmt.Fprintln(os.Stderr, "converging routing for the feed snapshot...")
		engine := bgp.New(topo, *seed)
		rib := engine.ComputeFullRIB(*workers)
		vps := vantage.SelectPeers(topo, rand.New(rand.NewSource(*seed)), *peers)
		snap := vantage.Collect(rib, vps, 0)
		f, err := os.Create(*feedPath)
		if err != nil {
			fatal(err)
		}
		if err := mrt.Write(f, snap); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %d feed entries from %d peers to %s\n",
			len(snap.Entries), len(vps), *feedPath)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "topogen:", err)
	os.Exit(1)
}
