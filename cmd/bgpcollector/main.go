// Command bgpcollector runs a RouteViews-style collector: it listens
// for RFC 4271 BGP sessions, drains each peer's table export, and on
// SIGINT (or after -timeout) writes everything it heard as a routelab
// MRT snapshot.
//
// Pair it with cmd/bgpexport to move a synthetic Internet's routes
// across a real TCP connection:
//
//	bgpcollector -listen 127.0.0.1:1790 -out feed.mrt &
//	bgpexport    -connect 127.0.0.1:1790 -seed 7 -scale 0.15 -peers 10
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"routelab/internal/asn"
	"routelab/internal/mrt"
	"routelab/internal/session"
)

func main() {
	var (
		listen  = flag.String("listen", "127.0.0.1:1790", "listen address")
		out     = flag.String("out", "feed.mrt", "snapshot output path")
		localAS = flag.Uint("as", 64999, "collector AS number")
		epoch   = flag.Int("epoch", 0, "snapshot epoch tag")
		timeout = flag.Duration("timeout", 0, "stop after this long (0 = wait for SIGINT)")
	)
	flag.Parse()

	col, err := session.NewCollector(*listen, session.Config{AS: asn.ASN(*localAS), BGPID: 0x7f000001})
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "collecting on %s (AS%d); ctrl-c to dump\n", col.Addr(), *localAS)

	done := make(chan struct{})
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	go func() {
		if *timeout > 0 {
			select {
			case <-sig:
			case <-time.After(*timeout):
			}
		} else {
			<-sig
		}
		close(done)
	}()
	<-done

	snap := col.Snapshot(*epoch)
	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	if err := mrt.Write(f, snap); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %d entries to %s\n", len(snap.Entries), *out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bgpcollector:", err)
	os.Exit(1)
}
