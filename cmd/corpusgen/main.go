// Command corpusgen regenerates the checked-in seed corpora for the
// native Go fuzz targets (internal/wire FuzzDecode, internal/mrt
// FuzzRead, internal/service FuzzAdmitSpec). Seeds are derived from the
// packages' own encoders — and, for the admission target, from the real
// scenario corpus under scenarios/ — so they are valid by construction
// and cover every shape the decoders branch on, plus a few deliberately
// corrupted framings to seed the error paths. Deterministic: running it
// twice produces byte-identical corpora.
//
// Usage (from the repo root):
//
//	go run ./cmd/corpusgen
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"routelab/internal/asn"
	"routelab/internal/mrt"
	"routelab/internal/vantage"
	"routelab/internal/wire"
)

// writeSeed stores one []byte seed in the go-fuzz corpus file format.
func writeSeed(dir, name string, data []byte) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Fatal(err)
	}
	content := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data)
	if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
		log.Fatal(err)
	}
}

// writeAdmitSeed stores one FuzzAdmitSpec seed: the corpus format needs
// one line per fuzz argument (body, Content-Type, ?format=).
func writeAdmitSeed(dir, name string, body []byte, contentType, formatQ string) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Fatal(err)
	}
	content := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\nstring(%q)\nstring(%q)\n",
		body, contentType, formatQ)
	if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
		log.Fatal(err)
	}
}

func wireSeeds(dir string) {
	pfx := func(a uint32, l uint8) asn.Prefix { return asn.NewPrefix(asn.Addr(a), l) }
	seeds := map[string]wire.Message{
		"keepalive": wire.Keepalive{},
		"open":      wire.Open{Version: 4, AS: 64500, HoldTime: 90, BGPID: 0x0a000001},
		"notification": wire.Notification{
			Code: 6, Subcode: 2, Data: []byte("shutdown"),
		},
		"update-empty": wire.Update{},
		"update-withdraw": wire.Update{
			Withdrawn: []asn.Prefix{pfx(0x0a000000, 8), pfx(0xc0a80000, 16)},
		},
		"update-announce": wire.Update{
			Origin:  wire.OriginIGP,
			ASPath:  asn.PathFromASNs(64500, 3356, 1299),
			NextHop: asn.Addr(0x0a000001),
			NLRI:    []asn.Prefix{pfx(0xc6336400, 24)},
		},
		"update-full": wire.Update{
			Withdrawn: []asn.Prefix{pfx(0x0a000000, 8)},
			Origin:    wire.OriginEGP,
			ASPath: asn.PathFromASNs(174, 2914).
				PrependSet([]asn.ASN{64500, 64501}).
				Prepend(47065),
			NextHop:     asn.Addr(0x0a000002),
			MED:         100,
			HasMED:      true,
			Communities: []wire.Community{wire.MakeCommunity(47065, 666), wire.CommunityNoExport},
			NLRI:        []asn.Prefix{pfx(0xc6336400, 24), pfx(0x08000000, 6)},
		},
	}
	for name, m := range seeds {
		writeSeed(dir, "seed-"+name, m.Encode(nil))
	}
	// Corrupted framings: bad marker, truncated body, undersized length.
	good := wire.Keepalive{}.Encode(nil)
	bad := append([]byte(nil), good...)
	bad[0] = 0x00
	writeSeed(dir, "seed-bad-marker", bad)
	writeSeed(dir, "seed-truncated", good[:wire.HeaderLen-1])
	short := append([]byte(nil), good...)
	short[16], short[17] = 0, 1 // claimed length below HeaderLen
	writeSeed(dir, "seed-short-length", short)
}

func mrtSeeds(dir string) {
	snaps := map[string]*vantage.Snapshot{
		"empty": {Epoch: 0},
		"entries": {
			Epoch: 3,
			Entries: []vantage.Entry{
				{Peer: 3356, Prefix: asn.NewPrefix(0xc6336400, 24), Path: []asn.ASN{3356, 174, 47065}},
				{Peer: 2914, Prefix: asn.NewPrefix(0x08000000, 6), Path: nil},
			},
		},
	}
	for name, s := range snaps {
		var buf bytes.Buffer
		if err := mrt.Write(&buf, s); err != nil {
			log.Fatal(err)
		}
		writeSeed(dir, "seed-"+name, buf.Bytes())
	}
	writeSeed(dir, "seed-bad-magic", []byte("MRTX\x00\x01\x00\x00\x00\x00\x00\x00"))
}

// admitSeeds seeds the fleet-admission fuzz target with the real
// scenario corpus (each spec under scenarios/, exactly as a client
// would POST it) plus the format-dispatch branches: explicit ?format=,
// Content-Type routing, the JSON sniff, and malformed documents that
// must error rather than panic.
func admitSeeds(dir string) {
	entries, err := os.ReadDir("scenarios")
	if err != nil {
		log.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ".yaml" {
			continue
		}
		body, err := os.ReadFile(filepath.Join("scenarios", e.Name()))
		if err != nil {
			log.Fatal(err)
		}
		name := e.Name()[:len(e.Name())-len(".yaml")]
		writeAdmitSeed(dir, "seed-corpus-"+name, body, "", "")
	}
	minimal := []byte("spec: routelab-spec/v1\nname: fuzz-seed\nprofile: test\n")
	writeAdmitSeed(dir, "seed-format-query", minimal, "", "yaml")
	writeAdmitSeed(dir, "seed-format-unknown", minimal, "", "toml")
	writeAdmitSeed(dir, "seed-json-content-type",
		[]byte(`{"spec": "routelab-spec/v1", "name": "fuzz-json", "profile": "test"}`),
		"application/json", "")
	writeAdmitSeed(dir, "seed-json-sniffed",
		[]byte(`  {"spec": "routelab-spec/v1", "name": "fuzz-sniff", "profile": "test"}`),
		"", "")
	writeAdmitSeed(dir, "seed-yaml-invalid", []byte("name: [unclosed\n"), "", "")
	writeAdmitSeed(dir, "seed-nameless", []byte("spec: routelab-spec/v1\nprofile: test\n"), "", "")
	writeAdmitSeed(dir, "seed-empty", nil, "", "")
}

func main() {
	wireSeeds("internal/wire/testdata/fuzz/FuzzDecode")
	mrtSeeds("internal/mrt/testdata/fuzz/FuzzRead")
	admitSeeds("internal/service/testdata/fuzz/FuzzAdmitSpec")
	fmt.Println("corpora written under internal/{wire,mrt,service}/testdata/fuzz/")
}
