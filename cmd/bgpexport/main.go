// Command bgpexport converges routing over a generated topology and
// exports a sample of vantage peers' tables to a collector over real
// RFC 4271 BGP sessions — the wire-level counterpart of the in-process
// vantage.Collect used by the experiments.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"routelab/internal/bgp"
	"routelab/internal/session"
	"routelab/internal/topology"
	"routelab/internal/vantage"
)

func main() {
	var (
		connect = flag.String("connect", "127.0.0.1:1790", "collector address")
		seed    = flag.Int64("seed", 7, "generator seed")
		scale   = flag.Float64("scale", 0.15, "topology scale")
		peers   = flag.Int("peers", 10, "number of feed peers to export")
	)
	flag.Parse()

	cfg := topology.DefaultConfig()
	cfg.Scale = *scale
	topo := topology.Generate(*seed, cfg)
	fmt.Fprintf(os.Stderr, "converging %d prefixes over %d ASes...\n",
		len(topo.OriginatedPrefixes()), topo.NumASes())
	engine := bgp.New(topo, *seed)
	rib := engine.ComputeFullRIB(0)

	vps := vantage.SelectPeers(topo, rand.New(rand.NewSource(*seed)), *peers)
	for _, p := range vps {
		if err := session.ExportRoutes(*connect, p, rib, session.Config{BGPID: uint32(p)}); err != nil {
			fmt.Fprintf(os.Stderr, "bgpexport: peer %s: %v\n", p, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "exported %s\n", p)
	}
}
