// Command routelint runs routelab's repo-invariant static-analysis
// suite (internal/lint): nine analyzers that prove, at compile time,
// the determinism, sealing, envelope, and shutdown rules the
// reproduction's goldens and concurrency model depend on. It is
// dependency-free — stdlib go/ast, go/parser, go/types, and go/importer
// only — so it runs on a bare toolchain and keeps go.mod require-free.
//
// Usage:
//
//	routelint [-format=text|json] [-rules a,b] [-exclude-rules c]
//	          [-group] [-list] [packages...]
//
// Packages default to ./... (every package in the enclosing module).
// Findings print as "file:line:col: [rule-id] message"; -group instead
// batches text output by rule (the `make lint-fix-list` view). -rules
// restricts the run to a comma-separated subset of the suite and
// -exclude-rules drops rules from it; suppression directives are still
// validated against the full registry, so a narrowed run never
// misreports `//lint:allow` lines for the rules it skipped.
// -format=json emits a routelab-lint/v1 report (validated by
// cmd/lintcheck) instead of text. Suppress an individual finding with a
// `//lint:allow rule-id reason` comment on the finding's line or the
// line above; the reason is mandatory.
//
// Exit status: 0 when every selected rule is clean, 1 on findings, 2 on
// usage errors (including unknown rule ids) or module load errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"routelab/internal/lint"
)

func main() {
	format := flag.String("format", "text", "output format: text or json (routelab-lint/v1)")
	rules := flag.String("rules", "", "comma-separated rule ids to run (default: the whole suite)")
	excludeRules := flag.String("exclude-rules", "", "comma-separated rule ids to skip")
	group := flag.Bool("group", false, "group text findings by rule (fix-list view)")
	list := flag.Bool("list", false, "list the analyzer suite and exit")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: routelint [-format=text|json] [-rules a,b] [-exclude-rules c] [-group] [-list] [packages...]")
		flag.PrintDefaults()
	}
	flag.Parse()

	all := lint.Analyzers()
	if *list {
		for _, a := range all {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *format != "text" && *format != "json" {
		fmt.Fprintf(os.Stderr, "routelint: unknown format %q (have text, json)\n", *format)
		os.Exit(2)
	}
	analyzers, err := lint.SelectAnalyzers(all, splitRules(*rules), splitRules(*excludeRules))
	if err != nil {
		fmt.Fprintln(os.Stderr, "routelint:", err)
		os.Exit(2)
	}

	cwd, err := os.Getwd()
	if err != nil {
		fail(err)
	}
	prog, err := lint.Load(cwd)
	if err != nil {
		fail(err)
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := selectPackages(prog, cwd, patterns)
	if err != nil {
		fail(err)
	}
	findings := lint.Run(prog, pkgs, analyzers)

	switch *format {
	case "json":
		rep := lint.BuildReport(prog.ModulePath, analyzers, len(pkgs), relativize(findings, cwd))
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fail(err)
		}
	default:
		rel := relativize(findings, cwd)
		if *group {
			printGrouped(rel, analyzers)
		} else {
			for _, f := range rel {
				fmt.Println(f)
			}
		}
		if len(findings) > 0 {
			fmt.Fprintf(os.Stderr, "routelint: %d finding(s) across %d package(s)\n", len(findings), len(pkgs))
		}
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
}

// printGrouped batches findings under one heading per rule, in registry
// order, with a per-rule count — the view `make lint-fix-list` serves
// so a cleanup pass can be carved up rule by rule.
func printGrouped(findings []lint.Finding, analyzers []*lint.Analyzer) {
	byRule := make(map[string][]lint.Finding)
	for _, f := range findings {
		byRule[f.Rule] = append(byRule[f.Rule], f)
	}
	for _, a := range analyzers {
		fs := byRule[a.Name]
		if len(fs) == 0 {
			continue
		}
		fmt.Printf("%s: %d finding(s) — %s\n", a.Name, len(fs), a.Doc)
		for _, f := range fs {
			fmt.Printf("  %s:%d:%d: %s\n", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Message)
		}
	}
}

// splitRules parses one comma-separated rule-id list, dropping empty
// elements so "-rules=" means "no restriction".
func splitRules(s string) []string {
	var out []string
	for _, id := range strings.Split(s, ",") {
		if id = strings.TrimSpace(id); id != "" {
			out = append(out, id)
		}
	}
	return out
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "routelint:", err)
	os.Exit(2)
}

// selectPackages resolves go-style package patterns against the loaded
// program: "./..." (everything), "./dir/..." (a subtree), "./dir" (one
// package), or bare import paths with an optional /... suffix.
func selectPackages(prog *lint.Program, cwd string, patterns []string) ([]*lint.Package, error) {
	selected := make(map[string]bool)
	for _, pat := range patterns {
		paths, err := expandPattern(prog, cwd, pat)
		if err != nil {
			return nil, err
		}
		for _, p := range paths {
			selected[p] = true
		}
	}
	var out []*lint.Package
	for _, pkg := range prog.Packages {
		if selected[pkg.Path] {
			out = append(out, pkg)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no packages match %s", strings.Join(patterns, " "))
	}
	return out, nil
}

func expandPattern(prog *lint.Program, cwd, pat string) ([]string, error) {
	recursive := false
	if p, ok := strings.CutSuffix(pat, "/..."); ok {
		recursive, pat = true, p
	}
	var base string
	if pat == "." || strings.HasPrefix(pat, "./") || strings.HasPrefix(pat, "../") {
		abs, err := filepath.Abs(filepath.Join(cwd, pat))
		if err != nil {
			return nil, err
		}
		rel, err := filepath.Rel(prog.Root, abs)
		if err != nil || strings.HasPrefix(rel, "..") {
			return nil, fmt.Errorf("pattern %s escapes module root %s", pat, prog.Root)
		}
		base = prog.ModulePath
		if rel != "." {
			base += "/" + filepath.ToSlash(rel)
		}
	} else {
		base = pat
	}
	var out []string
	for _, pkg := range prog.Packages {
		if pkg.Path == base || (recursive && strings.HasPrefix(pkg.Path, base+"/")) {
			out = append(out, pkg.Path)
		}
	}
	if len(out) == 0 && !recursive {
		return nil, fmt.Errorf("no package matches %s", pat)
	}
	return out, nil
}

// relativize rewrites finding paths relative to the working directory
// for compact, clickable output.
func relativize(findings []lint.Finding, cwd string) []lint.Finding {
	out := make([]lint.Finding, len(findings))
	for i, f := range findings {
		if rel, err := filepath.Rel(cwd, f.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			f.Pos.Filename = rel
		}
		out[i] = f
	}
	return out
}
