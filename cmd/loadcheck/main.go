// Command loadcheck validates a LOAD_routelab.json load-harness
// emission (schema routelab-load/v1, written by cmd/routeload) and
// prints a human-readable summary, the way cmd/benchcheck validates
// bench emissions. It exits non-zero on a missing, unparseable, or
// malformed file — how CI's load-smoke job fails on a broken emission.
//
// Gates, all off unless set:
//
//   - -max-error-rate: fails when the run's error rate exceeds the
//     threshold (percent). CI runs 0 — the fleet must serve a smoke-size
//     schedule with zero transport errors, bad statuses, or invalid
//     envelopes. Clean sheds (verified 429s) are NOT errors; a
//     saturation leg can shed heavily and still pass this gate.
//   - -max-shed-rate: fails when the shed rate exceeds the threshold
//     (percent). The plain load-smoke leg runs 0 — an unsaturated
//     fleet must never shed.
//   - -min-sheds: fails below a shed-count floor. The saturation leg
//     runs 1 — deliberately overfilled gates must actually shed, or
//     the overload protection silently stopped engaging.
//   - -max-p99: fails when whole-run p99 latency exceeds the duration.
//     CI uses a deliberately lax cross-machine tripwire (catastrophic
//     serialization or a build on the hot path), not a latency SLO —
//     same philosophy as benchcheck's ns/op gate.
//   - -min-throughput: fails below a req/s floor.
//   - -max-bucket-skew: histogram-shape gate. Fails when any occupied
//     time bucket's p99 exceeds skew × the whole-run p99 — the shape
//     regression where the run average looks fine but latency
//     collapses late (a leak, an eviction storm, a build landing on
//     the hot path mid-run). Needs a bucketed emission (-bucket on
//     routeload); 0 disables.
//
// Usage:
//
//	loadcheck [flags] [path]    (default LOAD_routelab.json)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"text/tabwriter"
	"time"

	"routelab/internal/service"
)

// gates carries every threshold so the evaluation is a pure function
// of (report, gates) — the part CI trusts, and the part the tests pin.
type gates struct {
	maxErrorRate  float64       // percent; always on
	maxShedRate   float64       // percent; always on
	minSheds      int64         // 0 = no gate
	maxP99        time.Duration // 0 = no gate
	minThroughput float64       // 0 = no gate
	maxBucketSkew float64       // ×whole-run p99; 0 = no gate
}

// evalGates returns one violation message per failed gate, empty when
// the report passes. Messages are complete sentences suitable for CI
// logs; the caller decides where they go.
func evalGates(rep *service.LoadReport, g gates) []string {
	var bad []string
	if rate := rep.ErrorRate * 100; rate > g.maxErrorRate {
		bad = append(bad, fmt.Sprintf("error rate %.2f%% EXCEEDS limit %.2f%% (%d/%d requests failed)",
			rate, g.maxErrorRate, rep.Errors, rep.Requests))
	}
	if rate := rep.ShedRate * 100; rate > g.maxShedRate {
		bad = append(bad, fmt.Sprintf("shed rate %.2f%% EXCEEDS limit %.2f%% (%d/%d requests shed)",
			rate, g.maxShedRate, rep.Sheds, rep.Requests))
	}
	if g.minSheds > 0 && rep.Sheds < g.minSheds {
		bad = append(bad, fmt.Sprintf("sheds %d BELOW floor %d — overload protection never engaged",
			rep.Sheds, g.minSheds))
	}
	if g.maxP99 > 0 && rep.Latency.P99NS > int64(g.maxP99) {
		bad = append(bad, fmt.Sprintf("p99 latency %v EXCEEDS tripwire %v",
			time.Duration(rep.Latency.P99NS).Round(time.Millisecond), g.maxP99))
	}
	if g.minThroughput > 0 && rep.Throughput < g.minThroughput {
		bad = append(bad, fmt.Sprintf("throughput %.1f req/s BELOW floor %.1f req/s",
			rep.Throughput, g.minThroughput))
	}
	if g.maxBucketSkew > 0 && rep.Latency.P99NS > 0 {
		limit := int64(g.maxBucketSkew * float64(rep.Latency.P99NS))
		for _, b := range rep.Buckets {
			if b.Requests == 0 {
				continue
			}
			if b.Latency.P99NS > limit {
				bad = append(bad, fmt.Sprintf("bucket [%v, %v) p99 %v EXCEEDS %.1f× whole-run p99 %v — latency shape regressed",
					time.Duration(b.StartNS), time.Duration(b.EndNS),
					time.Duration(b.Latency.P99NS).Round(time.Millisecond), g.maxBucketSkew,
					time.Duration(rep.Latency.P99NS).Round(time.Millisecond)))
			}
		}
	}
	return bad
}

// summarize prints the human-readable report: run identity, endpoint
// breakdown, and — when the emission is bucketed — the time-bucket
// histogram.
func summarize(out io.Writer, path string, rep *service.LoadReport) {
	ms := func(ns int64) float64 { return float64(ns) / 1e6 }
	fmt.Fprintf(out, "%s: valid %s emission (%s %s/%s, GOMAXPROCS %d)\n",
		path, rep.Schema, rep.GoVersion, rep.GOOS, rep.GOARCH, rep.GOMAXPROCS)
	fmt.Fprintf(out, "target %s: %d requests / %d clients over %v, %d scenario(s) %v\n",
		rep.Target, rep.Requests, rep.Clients, time.Duration(rep.WallNS).Round(time.Millisecond),
		len(rep.Scenarios), rep.Scenarios)
	fmt.Fprintf(out, "throughput %.1f req/s, error rate %.2f%%, shed rate %.2f%%, cache hit rate %.1f%%\n",
		rep.Throughput, rep.ErrorRate*100, rep.ShedRate*100, rep.CacheHitRate*100)
	w := tabwriter.NewWriter(out, 2, 8, 2, ' ', 0)
	fmt.Fprintln(w, "endpoint\trequests\terrors\tsheds\tp50 ms\tp90 ms\tp99 ms\tmax ms")
	for _, ep := range rep.Endpoints {
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%.1f\t%.1f\t%.1f\t%.1f\n",
			ep.Endpoint, ep.Requests, ep.Errors, ep.Sheds,
			ms(ep.Latency.P50NS), ms(ep.Latency.P90NS), ms(ep.Latency.P99NS), ms(ep.Latency.MaxNS))
	}
	w.Flush()
	if len(rep.Buckets) > 0 {
		fmt.Fprintf(out, "time buckets (%v wide):\n", time.Duration(rep.BucketNS))
		w = tabwriter.NewWriter(out, 2, 8, 2, ' ', 0)
		fmt.Fprintln(w, "start\trequests\terrors\tsheds\tp50 ms\tp99 ms\tmax ms")
		for _, b := range rep.Buckets {
			fmt.Fprintf(w, "%v\t%d\t%d\t%d\t%.1f\t%.1f\t%.1f\n",
				time.Duration(b.StartNS), b.Requests, b.Errors, b.Sheds,
				ms(b.Latency.P50NS), ms(b.Latency.P99NS), ms(b.Latency.MaxNS))
		}
		w.Flush()
	}
}

func main() {
	var g gates
	flag.Float64Var(&g.maxErrorRate, "max-error-rate", 0, "allowed error rate, in percent (clean sheds excluded)")
	flag.Float64Var(&g.maxShedRate, "max-shed-rate", 100, "allowed shed rate, in percent")
	flag.Int64Var(&g.minSheds, "min-sheds", 0, "shed-count floor (0 = no gate; saturation legs use >= 1)")
	flag.DurationVar(&g.maxP99, "max-p99", 0, "p99 latency tripwire (0 = no gate; keep it lax — cross-machine timings only catch blowups)")
	flag.Float64Var(&g.minThroughput, "min-throughput", 0, "throughput floor in req/s (0 = no gate)")
	flag.Float64Var(&g.maxBucketSkew, "max-bucket-skew", 0, "max per-bucket p99 as a multiple of whole-run p99 (0 = no gate; needs a bucketed emission)")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: loadcheck [flags] [path to LOAD_routelab.json]")
		flag.PrintDefaults()
	}
	flag.Parse()
	path := "LOAD_routelab.json"
	switch flag.NArg() {
	case 0:
	case 1:
		path = flag.Arg(0)
	default:
		flag.Usage()
		os.Exit(2)
	}

	rep, err := service.ReadLoadReport(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadcheck:", err)
		os.Exit(1)
	}

	summarize(os.Stdout, path, &rep)
	if bad := evalGates(&rep, g); len(bad) > 0 {
		for _, msg := range bad {
			fmt.Fprintln(os.Stderr, "loadcheck:", msg)
		}
		os.Exit(1)
	}
	fmt.Printf("gates: ok (error rate <= %.2f%%, shed rate <= %.2f%%, shed floor %d, p99 tripwire %v, throughput floor %.1f req/s, bucket skew %.1f)\n",
		g.maxErrorRate, g.maxShedRate, g.minSheds, g.maxP99, g.minThroughput, g.maxBucketSkew)
}
