// Command loadcheck validates a LOAD_routelab.json load-harness
// emission (schema routelab-load/v1, written by cmd/routeload) and
// prints a human-readable summary, the way cmd/benchcheck validates
// bench emissions. It exits non-zero on a missing, unparseable, or
// malformed file — how CI's load-smoke job fails on a broken emission.
//
// Gates, all off unless set:
//
//   - -max-error-rate: fails when the run's error rate exceeds the
//     threshold (percent). CI runs 0 — the fleet must serve a smoke-size
//     schedule with zero transport errors, bad statuses, or invalid
//     envelopes.
//   - -max-p99: fails when whole-run p99 latency exceeds the duration.
//     CI uses a deliberately lax cross-machine tripwire (catastrophic
//     serialization or a build on the hot path), not a latency SLO —
//     same philosophy as benchcheck's ns/op gate.
//   - -min-throughput: fails below a req/s floor.
//
// Usage:
//
//	loadcheck [flags] [path]    (default LOAD_routelab.json)
//	  -max-error-rate pct   allowed error rate in percent (default 0)
//	  -max-p99 duration     p99 latency tripwire (0 = no gate)
//	  -min-throughput rps   throughput floor (0 = no gate)
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"
	"time"

	"routelab/internal/service"
)

func main() {
	maxErrorRate := flag.Float64("max-error-rate", 0, "allowed error rate, in percent")
	maxP99 := flag.Duration("max-p99", 0, "p99 latency tripwire (0 = no gate; keep it lax — cross-machine timings only catch blowups)")
	minThroughput := flag.Float64("min-throughput", 0, "throughput floor in req/s (0 = no gate)")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: loadcheck [-max-error-rate pct] [-max-p99 dur] [-min-throughput rps] [path to LOAD_routelab.json]")
		flag.PrintDefaults()
	}
	flag.Parse()
	path := "LOAD_routelab.json"
	switch flag.NArg() {
	case 0:
	case 1:
		path = flag.Arg(0)
	default:
		flag.Usage()
		os.Exit(2)
	}

	rep, err := service.ReadLoadReport(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadcheck:", err)
		os.Exit(1)
	}

	ms := func(ns int64) float64 { return float64(ns) / 1e6 }
	fmt.Printf("%s: valid %s emission (%s %s/%s, GOMAXPROCS %d)\n",
		path, rep.Schema, rep.GoVersion, rep.GOOS, rep.GOARCH, rep.GOMAXPROCS)
	fmt.Printf("target %s: %d requests / %d clients over %v, %d scenario(s) %v\n",
		rep.Target, rep.Requests, rep.Clients, time.Duration(rep.WallNS).Round(time.Millisecond),
		len(rep.Scenarios), rep.Scenarios)
	fmt.Printf("throughput %.1f req/s, error rate %.2f%%, cache hit rate %.1f%%\n",
		rep.Throughput, rep.ErrorRate*100, rep.CacheHitRate*100)
	w := tabwriter.NewWriter(os.Stdout, 2, 8, 2, ' ', 0)
	fmt.Fprintln(w, "endpoint\trequests\terrors\tp50 ms\tp90 ms\tp99 ms\tmax ms")
	for _, ep := range rep.Endpoints {
		fmt.Fprintf(w, "%s\t%d\t%d\t%.1f\t%.1f\t%.1f\t%.1f\n",
			ep.Endpoint, ep.Requests, ep.Errors,
			ms(ep.Latency.P50NS), ms(ep.Latency.P90NS), ms(ep.Latency.P99NS), ms(ep.Latency.MaxNS))
	}
	w.Flush()

	ok := true
	if rate := rep.ErrorRate * 100; rate > *maxErrorRate {
		fmt.Fprintf(os.Stderr, "loadcheck: error rate %.2f%% EXCEEDS limit %.2f%% (%d/%d requests failed)\n",
			rate, *maxErrorRate, rep.Errors, rep.Requests)
		ok = false
	}
	if *maxP99 > 0 && rep.Latency.P99NS > int64(*maxP99) {
		fmt.Fprintf(os.Stderr, "loadcheck: p99 latency %v EXCEEDS tripwire %v\n",
			time.Duration(rep.Latency.P99NS).Round(time.Millisecond), *maxP99)
		ok = false
	}
	if *minThroughput > 0 && rep.Throughput < *minThroughput {
		fmt.Fprintf(os.Stderr, "loadcheck: throughput %.1f req/s BELOW floor %.1f req/s\n",
			rep.Throughput, *minThroughput)
		ok = false
	}
	if !ok {
		os.Exit(1)
	}
	fmt.Printf("gates: ok (error rate <= %.2f%%, p99 tripwire %v, throughput floor %.1f req/s)\n",
		*maxErrorRate, *maxP99, *minThroughput)
}
