package main

import (
	"strings"
	"testing"
	"time"

	"routelab/internal/service"
)

// golden reads the committed bucketed emission: 51 requests over 3 s
// from 4 clients, 1 error, 10 clean sheds, three 1 s buckets whose
// p99s climb 3.9 ms → 59 ms → 90 ms (the shape the skew gate exists
// to catch).
func golden(t *testing.T) *service.LoadReport {
	t.Helper()
	rep, err := service.ReadLoadReport("testdata/LOAD_golden.json")
	if err != nil {
		t.Fatalf("golden fixture unreadable: %v", err)
	}
	return &rep
}

func TestGoldenFixtureShape(t *testing.T) {
	rep := golden(t)
	if rep.Requests != 51 || rep.Errors != 1 || rep.Sheds != 10 {
		t.Fatalf("fixture drifted: requests/errors/sheds = %d/%d/%d", rep.Requests, rep.Errors, rep.Sheds)
	}
	if rep.BucketNS != 1e9 || len(rep.Buckets) != 3 {
		t.Fatalf("fixture buckets drifted: %d ns × %d", rep.BucketNS, len(rep.Buckets))
	}
}

func TestEvalGatesPass(t *testing.T) {
	rep := golden(t)
	g := gates{
		maxErrorRate:  2,  // 1/51 ≈ 1.96%
		maxShedRate:   20, // 10/51 ≈ 19.6%
		minSheds:      1,
		maxP99:        time.Second,
		minThroughput: 10, // 51/3 = 17 req/s
		maxBucketSkew: 1,  // worst bucket p99 == run p99
	}
	if bad := evalGates(rep, g); len(bad) != 0 {
		t.Errorf("healthy report failed gates: %v", bad)
	}
}

func TestEvalGatesTrip(t *testing.T) {
	cases := []struct {
		name string
		g    gates
		want string
		n    int
	}{
		{"error rate", gates{maxErrorRate: 0, maxShedRate: 100}, "error rate", 1},
		{"shed rate", gates{maxErrorRate: 2, maxShedRate: 10}, "shed rate", 1},
		{"shed floor", gates{maxErrorRate: 2, maxShedRate: 100, minSheds: 11}, "BELOW floor 11", 1},
		{"p99", gates{maxErrorRate: 2, maxShedRate: 100, maxP99: 50 * time.Millisecond}, "p99 latency", 1},
		{"throughput", gates{maxErrorRate: 2, maxShedRate: 100, minThroughput: 20}, "throughput", 1},
		// Skew 0.5 × 90 ms = 45 ms: the 59 ms and 90 ms buckets both trip.
		{"bucket skew", gates{maxErrorRate: 2, maxShedRate: 100, maxBucketSkew: 0.5}, "latency shape regressed", 2},
	}
	for _, tc := range cases {
		bad := evalGates(golden(t), tc.g)
		if len(bad) != tc.n {
			t.Errorf("%s: got %d violations %v, want %d", tc.name, len(bad), bad, tc.n)
			continue
		}
		if !strings.Contains(bad[0], tc.want) {
			t.Errorf("%s: violation %q should mention %q", tc.name, bad[0], tc.want)
		}
	}
}

// The shed floor must not trip on reports that shed nothing when the
// gate is off — the plain load-smoke leg runs minSheds 0.
func TestEvalGatesShedFloorOff(t *testing.T) {
	rep := golden(t)
	rep.Sheds = 0
	rep.ShedRate = 0
	if bad := evalGates(rep, gates{maxErrorRate: 2, maxShedRate: 100}); len(bad) != 0 {
		t.Errorf("shed floor tripped while disabled: %v", bad)
	}
}

// The skew gate needs buckets; an unbucketed emission passes it
// vacuously rather than erroring.
func TestEvalGatesSkewWithoutBuckets(t *testing.T) {
	rep := golden(t)
	rep.Buckets = nil
	rep.BucketNS = 0
	if bad := evalGates(rep, gates{maxErrorRate: 2, maxShedRate: 100, maxBucketSkew: 0.1}); len(bad) != 0 {
		t.Errorf("skew gate tripped without buckets: %v", bad)
	}
}

func TestSummarize(t *testing.T) {
	var sb strings.Builder
	summarize(&sb, "testdata/LOAD_golden.json", golden(t))
	out := sb.String()
	for _, want := range []string{
		"valid routelab-load/v1 emission",
		"shed rate 19.61%",
		"time buckets (1s wide)",
		"whatif",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}
