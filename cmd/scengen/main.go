// Command scengen expands, validates, diffs, and lists routelab's
// declarative scenario specs (routelab-spec/v1, internal/spec): the
// tool that turns the checked-in corpus under scenarios/ into sealed
// scenario.Configs without recompiling Go.
//
// Usage:
//
//	scengen [flags] <command> [args]
//
// Commands:
//
//	expand <spec>       compile a spec and print the resulting Config
//	                    (-format=json emits the routelab-scengen/v1
//	                    envelope the corpus goldens pin)
//	validate <spec>...  check documents against the schema; prints one
//	                    line per problem
//	diff <a> <b>        field-level diff of two expanded configs
//	                    ("Topology.NumTier1: 12 -> 40")
//	list <dir>          one line per spec in a corpus directory
//	check <dir>         expand every spec in the directory and diff the
//	                    canonical JSON against <dir>/golden/<name>.json
//	                    (-update rewrites the goldens)
//
// Flags:
//
//	-format text|json   expand output format (default text)
//	-overlay a,b        extra overlays to apply, in order, after the
//	                    spec's own apply list
//	-update             with check: write goldens instead of diffing
//	-expand PATH        flag form of the expand command
//	                    (scengen -expand scenarios/paper.yaml)
//	-check DIR          flag form of the check command
//
// Exit status follows the routelint convention: 0 clean, 1 on findings
// (invalid documents, differing configs, stale goldens), 2 on usage or
// I/O errors. CI runs `scengen check scenarios` (make spec-check) so
// the corpus cannot rot.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"routelab/internal/spec"
)

func main() {
	format := flag.String("format", "text", "expand output format: text or json (routelab-scengen/v1)")
	overlay := flag.String("overlay", "", "comma-separated overlays to apply after the spec's own apply list")
	update := flag.Bool("update", false, "with check: rewrite the golden dumps instead of diffing")
	expandFlag := flag.String("expand", "", "flag form of the expand command: spec file to expand")
	checkFlag := flag.String("check", "", "flag form of the check command: corpus directory to check")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: scengen [flags] <expand|validate|diff|list|check> [args]")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *format != "text" && *format != "json" {
		fmt.Fprintf(os.Stderr, "scengen: unknown format %q (have text, json)\n", *format)
		os.Exit(2)
	}
	var overlays []string
	if *overlay != "" {
		overlays = strings.Split(*overlay, ",")
	}
	// The flag forms (-expand, -check) rewrite into the command form.
	cmd, args := "", []string(nil)
	switch {
	case *expandFlag != "" && *checkFlag != "":
		fmt.Fprintln(os.Stderr, "scengen: -expand and -check are mutually exclusive")
		os.Exit(2)
	case *expandFlag != "":
		cmd, args = "expand", append([]string{*expandFlag}, flag.Args()...)
	case *checkFlag != "":
		cmd, args = "check", append([]string{*checkFlag}, flag.Args()...)
	default:
		if flag.NArg() < 1 {
			flag.Usage()
			os.Exit(2)
		}
		cmd, args = flag.Arg(0), flag.Args()[1:]
	}
	var (
		findings int
		err      error
	)
	switch cmd {
	case "expand":
		findings, err = cmdExpand(args, *format, overlays)
	case "validate":
		findings, err = cmdValidate(args, overlays)
	case "diff":
		findings, err = cmdDiff(args, overlays)
	case "list":
		findings, err = cmdList(args)
	case "check":
		findings, err = cmdCheck(args, overlays, *update)
	default:
		fmt.Fprintf(os.Stderr, "scengen: unknown command %q\n", cmd)
		flag.Usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "scengen:", err)
		os.Exit(2)
	}
	if findings > 0 {
		os.Exit(1)
	}
}

// specProblem classifies an error as a document finding (exit 1)
// rather than an environment/usage failure (exit 2): anything the
// spec's author can fix in the document. errors.As descends through
// wrapping and errors.Join trees.
func specProblem(err error) bool {
	var fe *spec.FieldError
	var pe *spec.ParseError
	return errors.As(err, &fe) || errors.As(err, &pe)
}

func cmdExpand(args []string, format string, overlays []string) (int, error) {
	if len(args) != 1 {
		return 0, fmt.Errorf("expand takes exactly one spec file")
	}
	e, err := spec.Expand(args[0], overlays)
	if err != nil {
		if specProblem(err) {
			fmt.Fprintln(os.Stderr, err)
			return 1, nil
		}
		return 0, err
	}
	if format == "json" {
		out, err := e.MarshalCanonical()
		if err != nil {
			return 0, err
		}
		os.Stdout.Write(out)
		return 0, nil
	}
	fmt.Printf("# %s (profile %s", e.Name, e.Profile)
	if len(e.Overlays) > 0 {
		fmt.Printf(", overlays %s", strings.Join(e.Overlays, ", "))
	}
	fmt.Println(")")
	if e.Description != "" {
		fmt.Println("#", e.Description)
	}
	lines, err := e.Flatten()
	if err != nil {
		return 0, err
	}
	for _, l := range lines {
		fmt.Println(l)
	}
	return 0, nil
}

func cmdValidate(args []string, overlays []string) (int, error) {
	if len(args) == 0 {
		return 0, fmt.Errorf("validate takes one or more spec files")
	}
	findings := 0
	for _, path := range args {
		_, err := spec.Expand(path, overlays)
		switch {
		case err == nil:
			fmt.Printf("%s: ok\n", path)
		case specProblem(err):
			findings++
			fmt.Printf("%s: INVALID\n", path)
			fmt.Printf("  %s\n", strings.ReplaceAll(err.Error(), "\n", "\n  "))
		default:
			return 0, err
		}
	}
	return findings, nil
}

func cmdDiff(args []string, overlays []string) (int, error) {
	if len(args) != 2 {
		return 0, fmt.Errorf("diff takes exactly two spec files")
	}
	a, err := spec.Expand(args[0], overlays)
	if err != nil {
		return 0, err
	}
	b, err := spec.Expand(args[1], overlays)
	if err != nil {
		return 0, err
	}
	lines, err := spec.Diff(a, b)
	if err != nil {
		return 0, err
	}
	for _, l := range lines {
		fmt.Println(l)
	}
	if len(lines) > 0 {
		fmt.Fprintf(os.Stderr, "scengen: %d field(s) differ between %s and %s\n", len(lines), a.Name, b.Name)
		return 1, nil
	}
	return 0, nil
}

func cmdList(args []string) (int, error) {
	if len(args) != 1 {
		return 0, fmt.Errorf("list takes exactly one directory")
	}
	files, err := corpusFiles(args[0])
	if err != nil {
		return 0, err
	}
	findings := 0
	for _, f := range files {
		e, err := spec.Expand(f, nil)
		if err != nil {
			findings++
			fmt.Printf("%-24s INVALID: %v\n", filepath.Base(f), err)
			continue
		}
		tag := e.Profile
		if len(e.Overlays) > 0 {
			tag += "+" + strings.Join(e.Overlays, "+")
		}
		fmt.Printf("%-24s %-12s %s\n", e.Name, tag, e.Description)
	}
	return findings, nil
}

func cmdCheck(args []string, overlays []string, update bool) (int, error) {
	if len(args) != 1 {
		return 0, fmt.Errorf("check takes exactly one corpus directory")
	}
	dir := args[0]
	files, err := corpusFiles(dir)
	if err != nil {
		return 0, err
	}
	if len(files) == 0 {
		return 0, fmt.Errorf("no specs in %s", dir)
	}
	goldenDir := filepath.Join(dir, "golden")
	if update {
		if err := os.MkdirAll(goldenDir, 0o755); err != nil {
			return 0, err
		}
	}
	findings := 0
	names := make(map[string]bool, len(files))
	for _, f := range files {
		e, err := spec.Expand(f, overlays)
		if err != nil {
			if specProblem(err) {
				findings++
				fmt.Printf("%s: INVALID: %v\n", f, err)
				continue
			}
			return 0, err
		}
		names[e.Name] = true
		// Normalize provenance so the golden bytes do not depend on
		// the working directory check ran from.
		e.Source = filepath.ToSlash(filepath.Join(filepath.Base(filepath.Clean(dir)), filepath.Base(f)))
		got, err := e.MarshalCanonical()
		if err != nil {
			return 0, err
		}
		goldenPath := filepath.Join(goldenDir, e.Name+".json")
		if update {
			if err := os.WriteFile(goldenPath, got, 0o644); err != nil {
				return 0, err
			}
			fmt.Printf("%s: wrote %s\n", f, goldenPath)
			continue
		}
		want, err := os.ReadFile(goldenPath)
		if err != nil {
			findings++
			fmt.Printf("%s: missing golden %s (run scengen -update check %s)\n", f, goldenPath, dir)
			continue
		}
		if string(got) != string(want) {
			findings++
			fmt.Printf("%s: expansion differs from %s (refresh with scengen -update check %s)\n",
				f, goldenPath, dir)
			for _, l := range firstDiffLines(string(want), string(got), 6) {
				fmt.Printf("  %s\n", l)
			}
			continue
		}
		fmt.Printf("%s: ok\n", f)
	}
	// A golden with no spec is rot in the other direction.
	goldens, err := filepath.Glob(filepath.Join(goldenDir, "*.json"))
	if err != nil {
		return 0, err
	}
	sort.Strings(goldens)
	for _, g := range goldens {
		name := strings.TrimSuffix(filepath.Base(g), ".json")
		if !names[name] {
			findings++
			fmt.Printf("%s: golden has no spec in %s (delete it or add the spec)\n", g, dir)
		}
	}
	return findings, nil
}

// corpusFiles lists the spec documents of a directory, sorted.
func corpusFiles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		switch strings.ToLower(filepath.Ext(e.Name())) {
		case ".yaml", ".yml", ".json":
			out = append(out, filepath.Join(dir, e.Name()))
		}
	}
	sort.Strings(out)
	return out, nil
}

// firstDiffLines reports the first differing lines of two texts.
func firstDiffLines(want, got string, max int) []string {
	w, g := strings.Split(want, "\n"), strings.Split(got, "\n")
	var out []string
	for i := 0; i < len(w) || i < len(g); i++ {
		var lw, lg string
		if i < len(w) {
			lw = w[i]
		}
		if i < len(g) {
			lg = g[i]
		}
		if lw == lg {
			continue
		}
		out = append(out, fmt.Sprintf("line %d: golden %q != got %q", i+1, lw, lg))
		if len(out) >= max {
			break
		}
	}
	return out
}
