// Command routelab reproduces the evaluation of "Investigating
// Interdomain Routing Policies in the Wild" (IMC 2015) over a synthetic
// Internet: it builds the full scenario (ground-truth topology, routing,
// monitor feeds, relationship inference, Atlas traceroute campaign) and
// regenerates the paper's tables and figures.
//
// Usage:
//
//	routelab [flags] <experiment>
//
// where <experiment> is one of: all, table1, figure1, table2, figure2,
// figure3, table3, table4, alternates.
//
// Flags:
//
//	-seed N     master seed (default 2015)
//	-scale F    topology scale factor (default 1.0; 0.1 is fast)
//	-traces N   traceroute campaign size (default 28510)
//	-probes N   selected probe count (default 1998)
//	-workers N  parallel routing workers (default 0 = GOMAXPROCS; 1 = serial)
//	-quiet      suppress build progress
//
// Output is byte-identical for any -workers value; the flag only trades
// wall-clock for cores (see internal/parallel).
package main

import (
	"flag"
	"fmt"
	"os"

	"routelab/internal/experiments"
	"routelab/internal/scenario"
)

func main() {
	var (
		seed    = flag.Int64("seed", 2015, "master seed")
		scale   = flag.Float64("scale", 1.0, "topology scale factor")
		traces  = flag.Int("traces", 28510, "traceroute campaign size")
		probes  = flag.Int("probes", 1998, "selected probe count")
		workers = flag.Int("workers", 0, "parallel routing workers (0 = all cores, 1 = serial)")
		quiet   = flag.Bool("quiet", false, "suppress build progress")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: routelab [flags] <experiment>\nexperiments: %v\nflags:\n",
			experiments.Names())
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	name := flag.Arg(0)

	cfg := scenario.DefaultConfig()
	cfg.Seed = *seed
	cfg.Topology.Scale = *scale
	cfg.TracesTarget = *traces
	cfg.NumProbes = *probes
	cfg.RoutingWorkers = *workers
	if *scale < 0.5 {
		// Small topologies have proportionally fewer probes available.
		cfg.NumProbes = int(float64(cfg.NumProbes) * *scale * 2)
		if cfg.NumProbes < 60 {
			cfg.NumProbes = 60
		}
		cfg.TracesTarget = int(float64(cfg.TracesTarget) * *scale * 2)
	}

	logf := scenario.Logf(nil)
	if !*quiet {
		logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	s, err := scenario.Build(cfg, logf)
	if err != nil {
		fmt.Fprintln(os.Stderr, "routelab:", err)
		os.Exit(1)
	}
	if err := experiments.Run(name, os.Stdout, s, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "routelab:", err)
		os.Exit(1)
	}
}
