// Command routelab reproduces the evaluation of "Investigating
// Interdomain Routing Policies in the Wild" (IMC 2015) over a synthetic
// Internet: it builds the full scenario (ground-truth topology, routing,
// monitor feeds, relationship inference, Atlas traceroute campaign) and
// regenerates the paper's tables and figures.
//
// Usage:
//
//	routelab [flags] <experiment>
//
// where <experiment> is one of: all, table1, figure1, table2, figure2,
// figure3, table3, table4, alternates.
//
// Flags:
//
//	-spec PATH         build the world a declarative scenario spec
//	                   describes (scenarios/*.yaml; see SCENARIOS.md)
//	                   instead of the flag-built default
//	-overlay A,B       overlay names to apply on top of -spec, in order
//	-seed N            master seed (default 2015)
//	-scale F           topology scale factor (default 1.0; 0.1 is fast)
//	-traces N          traceroute campaign size (default 28510)
//	-probes N          selected probe count (default 1998)
//	-workers N         parallel routing workers (default 0 = GOMAXPROCS; 1 = serial)
//	-quiet             suppress build progress
//	-metrics-json PATH write a structured run report (per-stage wall-clock
//	                   timings plus every obs counter/gauge) as JSON
//	-debug-addr ADDR   serve net/http/pprof and expvar on ADDR
//	                   (e.g. localhost:6060) for live profiling
//
// With -spec, the spec's campaign sizing is taken at face value (the
// small-scale probe adjustment below applies only to flag-built
// configs), and any of -seed/-scale/-traces/-probes/-workers passed
// explicitly still override the spec — "-spec x.yaml -seed 7" means
// that world, reseeded.
//
// Output is byte-identical for any -workers value; the flag only trades
// wall-clock for cores (see internal/parallel). The observability
// flags are side channels — they never change experiment output (see
// internal/obs and DESIGN.md §9).
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"strings"
	"time"

	"routelab/internal/experiments"
	"routelab/internal/obs"
	"routelab/internal/scenario"
	"routelab/internal/spec"
)

// splitOverlays parses the -overlay flag's comma-separated list.
func splitOverlays(s string) []string {
	var out []string
	for _, name := range strings.Split(s, ",") {
		if name = strings.TrimSpace(name); name != "" {
			out = append(out, name)
		}
	}
	return out
}

func main() {
	var (
		specPath    = flag.String("spec", "", "scenario spec file (YAML/JSON; see SCENARIOS.md)")
		overlayList = flag.String("overlay", "", "comma-separated overlay names to apply (requires -spec)")
		seed        = flag.Int64("seed", 2015, "master seed")
		scale       = flag.Float64("scale", 1.0, "topology scale factor")
		traces      = flag.Int("traces", 28510, "traceroute campaign size")
		probes      = flag.Int("probes", 1998, "selected probe count")
		workers     = flag.Int("workers", 0, "parallel routing workers (0 = all cores, 1 = serial)")
		quiet       = flag.Bool("quiet", false, "suppress build progress")
		metricsJSON = flag.String("metrics-json", "", "write a structured metrics report (JSON) to this path")
		debugAddr   = flag.String("debug-addr", "", "serve net/http/pprof and expvar on this address (e.g. localhost:6060)")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: routelab [flags] <experiment>\nexperiments: %v\nflags:\n",
			experiments.Names())
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	name := flag.Arg(0)
	// Fail fast — before the expensive build — on a name we can't
	// dispatch and on flag combinations no scenario can be built from.
	if _, ok := experiments.Get(name); !ok {
		fmt.Fprintf(os.Stderr, "routelab: unknown experiment %q (have %v)\n",
			name, experiments.Names())
		os.Exit(2)
	}

	if *debugAddr != "" {
		// The pprof and expvar handlers register on DefaultServeMux at
		// import time; the metrics registry joins them under /debug/vars.
		obs.Default().PublishExpvar("routelab")
		ln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "routelab: debug server:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "debug server: http://%s/debug/pprof/ and /debug/vars\n", ln.Addr())
		go func() {
			if err := http.Serve(ln, nil); err != nil {
				fmt.Fprintln(os.Stderr, "routelab: debug server:", err)
			}
		}()
	}

	var cfg scenario.Config
	if *specPath != "" {
		exp, err := spec.Expand(*specPath, splitOverlays(*overlayList))
		if err != nil {
			fmt.Fprintln(os.Stderr, "routelab: spec:", err)
			os.Exit(2)
		}
		cfg = exp.Config
		// Explicitly-passed flags still win over the spec; defaults do
		// not. The spec's campaign sizing is authoritative, so the
		// small-scale probe adjustment below is skipped here.
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "seed":
				cfg.Seed = *seed
			case "scale":
				cfg.Topology.Scale = *scale
			case "traces":
				cfg.TracesTarget = *traces
			case "probes":
				cfg.NumProbes = *probes
			case "workers":
				cfg.RoutingWorkers = *workers
			}
		})
	} else {
		if *overlayList != "" {
			fmt.Fprintln(os.Stderr, "routelab: -overlay requires -spec")
			os.Exit(2)
		}
		cfg = scenario.DefaultConfig()
		cfg.Seed = *seed
		cfg.Topology.Scale = *scale
		cfg.TracesTarget = *traces
		cfg.NumProbes = *probes
		cfg.RoutingWorkers = *workers
		if *scale < 0.5 {
			// Small topologies have proportionally fewer probes available.
			cfg.NumProbes = int(float64(cfg.NumProbes) * *scale * 2)
			if cfg.NumProbes < 60 {
				cfg.NumProbes = 60
			}
			cfg.TracesTarget = int(float64(cfg.TracesTarget) * *scale * 2)
		}
	}
	if err := cfg.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "routelab: invalid flags:", err)
		os.Exit(2)
	}

	logf := scenario.Logf(nil)
	if !*quiet {
		logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}

	start := time.Now()
	// writeMetrics emits the run report whether or not the run
	// succeeded — a report of a failed run is exactly what you want
	// when debugging one.
	writeMetrics := func() {
		if *metricsJSON == "" {
			return
		}
		rep := obs.NewReport()
		rep.Command = "routelab " + strings.Join(os.Args[1:], " ")
		rep.Experiment = name
		rep.Seed = cfg.Seed
		rep.Scale = cfg.Topology.Scale
		rep.Workers = cfg.RoutingWorkers
		rep.WallNS = int64(time.Since(start))
		rep.Metrics = obs.Snap()
		if err := rep.WriteFile(*metricsJSON); err != nil {
			fmt.Fprintln(os.Stderr, "routelab: metrics:", err)
		} else if !*quiet {
			fmt.Fprintf(os.Stderr, "metrics report written to %s\n", *metricsJSON)
		}
	}

	s, err := scenario.Build(cfg, logf)
	if err != nil {
		writeMetrics()
		fmt.Fprintln(os.Stderr, "routelab:", err)
		os.Exit(1)
	}
	if err := experiments.Run(name, os.Stdout, s, cfg.Seed); err != nil {
		writeMetrics()
		fmt.Fprintln(os.Stderr, "routelab:", err)
		os.Exit(1)
	}
	writeMetrics()
}
